package lscr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/lcr"
	"lscr/internal/pattern"
	"lscr/internal/testkg"
	"lscr/internal/testkg/pat"
)

// oracle answers an LSCR query by Theorem 2.1 directly: s -L,S-> t iff
// some v ∈ V(S,G) has s -L-> v and v -L-> t.
func oracle(g *graph.Graph, q Query) bool {
	m, err := pattern.NewMatcher(g, q.Constraint)
	if err != nil {
		panic(err)
	}
	for _, v := range m.MatchAll() {
		if lcr.Reach(g, q.Source, v, q.Labels) && lcr.Reach(g, v, q.Target, q.Labels) {
			return true
		}
	}
	return false
}

func lset(t testing.TB, g *graph.Graph, names ...string) labelset.Set {
	t.Helper()
	var s labelset.Set
	for _, n := range names {
		l, ok := g.LabelByName(n)
		if !ok {
			t.Fatalf("label %q not in graph", n)
		}
		s = s.Add(l)
	}
	return s
}

// paperCases are the concrete LSCR facts the paper states about the
// running example (Figure 3 and §2-§3).
func paperCases(t *testing.T) (*graph.Graph, *pattern.Constraint, []struct {
	s, t string
	L    labelset.Set
	want bool
}) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	all := g.LabelUniverse()
	cases := []struct {
		s, t string
		L    labelset.Set
		want bool
	}{
		// §2 "Overall": with L={likes,follows}: v0 -L,S0-> v4, not v0 -L,S0-> v3.
		{"v0", "v4", lset(t, g, "likes", "follows"), true},
		{"v0", "v3", lset(t, g, "likes", "follows"), false},
		// §2: v0 -S0-> v4, v0 -S0-> v3, v3 -S0-> v4 (unconstrained labels).
		{"v0", "v4", all, true},
		{"v0", "v3", all, true},
		{"v3", "v4", all, true},
		// §3: with L={likes,hates,friendOf}, v3 -L,S0-> v4 — requires the
		// recall walk <v3,likes,v4,hates,v1,friendOf,v3,likes,v4>.
		{"v3", "v4", lset(t, g, "likes", "hates", "friendOf"), true},
		// The only {likes}-path v3->v4 passes no vertex satisfying S0.
		{"v3", "v4", lset(t, g, "likes"), false},
		// The source itself satisfies S0, so any L-path works:
		// v2 -{follows}-> v4 (v2 ∈ V(S0,G0) and v2 ∈ V(p)).
		{"v2", "v4", lset(t, g, "follows"), true},
	}
	return g, s0, cases
}

func TestUISPaperCases(t *testing.T) {
	g, s0, cases := paperCases(t)
	ids := map[string]graph.VertexID{}
	for _, n := range []string{"v0", "v1", "v2", "v3", "v4"} {
		ids[n] = g.Vertex(n)
	}
	for _, tc := range cases {
		q := Query{Source: ids[tc.s], Target: ids[tc.t], Labels: tc.L, Constraint: s0}
		got, st, err := UIS(g, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("UIS(%s,%s,%v) = %v, want %v", tc.s, tc.t, tc.L, got, tc.want)
		}
		if st.PassedVertices > g.NumVertices() {
			t.Errorf("PassedVertices %d > |V|", st.PassedVertices)
		}
		if st.SearchTreeNodes > 2*g.NumVertices() {
			t.Errorf("search tree has %d nodes > 2|V| (Definition 3.2)", st.SearchTreeNodes)
		}
	}
}

func TestUISStarPaperCases(t *testing.T) {
	g, s0, cases := paperCases(t)
	ids := map[string]graph.VertexID{}
	for _, n := range []string{"v0", "v1", "v2", "v3", "v4"} {
		ids[n] = g.Vertex(n)
	}
	for _, tc := range cases {
		q := Query{Source: ids[tc.s], Target: ids[tc.t], Labels: tc.L, Constraint: s0}
		got, st, err := UISStar(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("UIS*(%s,%s,%v) = %v, want %v", tc.s, tc.t, tc.L, got, tc.want)
		}
		if st.SearchTreeNodes > 2*g.NumVertices() {
			t.Errorf("search tree has %d nodes > 2|V|", st.SearchTreeNodes)
		}
	}
}

func TestINSPaperCases(t *testing.T) {
	g, s0, cases := paperCases(t)
	ids := map[string]graph.VertexID{}
	for _, n := range []string{"v0", "v1", "v2", "v3", "v4"} {
		ids[n] = g.Vertex(n)
	}
	for _, k := range []int{1, 2, 5} {
		idx := NewLocalIndex(g, IndexParams{K: k, Seed: 42})
		for _, tc := range cases {
			q := Query{Source: ids[tc.s], Target: ids[tc.t], Labels: tc.L, Constraint: s0}
			got, _, err := INS(g, idx, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("INS[k=%d](%s,%s,%v) = %v, want %v", k, tc.s, tc.t, tc.L, got, tc.want)
			}
		}
	}
}

func TestRecallAbility(t *testing.T) {
	// The §3 walk: a plain DFS/BFS never revisits v3/v4, so only an
	// algorithm with recall answers true. This is the paper's motivating
	// example for UIS.
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	q := Query{
		Source: ids["v3"], Target: ids["v4"],
		Labels:     lset(t, g, "likes", "hates", "friendOf"),
		Constraint: s0,
	}
	got, st, err := UIS(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("UIS lacks recall: v3 -L,S0-> v4 not found")
	}
	// v4 must appear twice in the search tree (as v4F then v4T).
	if st.SearchTreeNodes <= st.PassedVertices {
		t.Errorf("no vertex was revisited: nodes=%d passed=%d", st.SearchTreeNodes, st.PassedVertices)
	}
}

func TestEdgeCases(t *testing.T) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	all := g.LabelUniverse()
	idx := NewLocalIndex(g, IndexParams{K: 2, Seed: 1})

	run := func(q Query) (u, us, in bool) {
		var err error
		u, _, err = UIS(g, q)
		if err != nil {
			t.Fatal(err)
		}
		us, _, err = UISStar(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		in, _, err = INS(g, idx, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		return
	}

	// s == t, s satisfies S0 (v1): trivially true.
	q := Query{Source: ids["v1"], Target: ids["v1"], Labels: all, Constraint: s0}
	if u, us, in := run(q); !u || !us || !in {
		t.Errorf("s=t satisfying: UIS=%v UIS*=%v INS=%v, want all true", u, us, in)
	}
	// s == t, s does not satisfy S0 but lies on a cycle through v1.
	q = Query{Source: ids["v3"], Target: ids["v3"], Labels: all, Constraint: s0}
	if u, us, in := run(q); !u || !us || !in {
		t.Errorf("s=t on cycle: UIS=%v UIS*=%v INS=%v, want all true", u, us, in)
	}
	// s == t, no cycle: v0 -> v0.
	q = Query{Source: ids["v0"], Target: ids["v0"], Labels: all, Constraint: s0}
	if u, us, in := run(q); u || us || in {
		t.Errorf("s=t no cycle: UIS=%v UIS*=%v INS=%v, want all false", u, us, in)
	}
	// Empty label constraint.
	q = Query{Source: ids["v0"], Target: ids["v4"], Labels: 0, Constraint: s0}
	if u, us, in := run(q); u || us || in {
		t.Errorf("empty L: UIS=%v UIS*=%v INS=%v, want all false", u, us, in)
	}
	// Unsatisfiable constraint: nothing likes v0.
	likes, _ := g.LabelByName("likes")
	bad := &pattern.Constraint{
		Focus:    "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: likes, Object: pattern.C(ids["v0"])}},
	}
	q = Query{Source: ids["v0"], Target: ids["v4"], Labels: all, Constraint: bad}
	if u, us, in := run(q); u || us || in {
		t.Errorf("unsat S: UIS=%v UIS*=%v INS=%v, want all false", u, us, in)
	}
	// Out-of-range endpoints.
	q = Query{Source: 99, Target: ids["v0"], Labels: all, Constraint: s0}
	if _, _, err := UIS(g, q); err != ErrBadQuery {
		t.Errorf("UIS out-of-range: %v", err)
	}
	if _, _, err := UISStar(g, q, nil); err != ErrBadQuery {
		t.Errorf("UIS* out-of-range: %v", err)
	}
	if _, _, err := INS(g, idx, q, nil); err != ErrBadQuery {
		t.Errorf("INS out-of-range: %v", err)
	}
	// Invalid constraint surfaces as an error.
	q = Query{Source: ids["v0"], Target: ids["v4"], Labels: all, Constraint: &pattern.Constraint{Focus: "x"}}
	if _, _, err := UIS(g, q); err == nil {
		t.Error("UIS accepted invalid constraint")
	}
}

// TestAlgorithmsAgreeProperty is the central cross-validation: UIS, UIS*
// and INS must agree with the Theorem 2.1 oracle on random graphs,
// constraints, label sets and endpoints.
func TestAlgorithmsAgreeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(14) + 2
		g := testkg.Random(rng, n, rng.Intn(40), rng.Intn(5)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(n) + 1, Seed: seed})
		for probe := 0; probe < 6; probe++ {
			c := pat.RandomConstraint(rng, g, 3)
			q := Query{
				Source:     graph.VertexID(rng.Intn(n)),
				Target:     graph.VertexID(rng.Intn(n)),
				Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
				Constraint: c,
			}
			want := oracle(g, q)
			u, _, err := UIS(g, q)
			if err != nil || u != want {
				return false
			}
			us, _, err := UISStar(g, q, nil)
			if err != nil || us != want {
				return false
			}
			in, _, err := INS(g, idx, q, nil)
			if err != nil || in != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithmsAgreeShuffledVS checks that UIS* and INS are correct for
// any processing order of V(S,G) (the paper treats it as disordered, §4).
func TestAlgorithmsAgreeShuffledVS(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		g := testkg.Random(rng, n, rng.Intn(30), rng.Intn(4)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(n) + 1, Seed: seed})
		c := pat.RandomConstraint(rng, g, 3)
		m, err := pattern.NewMatcher(g, c)
		if err != nil {
			return false
		}
		vs := m.MatchAll()
		rng.Shuffle(len(vs), func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
		for probe := 0; probe < 5; probe++ {
			q := Query{
				Source:     graph.VertexID(rng.Intn(n)),
				Target:     graph.VertexID(rng.Intn(n)),
				Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
				Constraint: c,
			}
			want := oracle(g, q)
			us, _, err := UISStar(g, q, vs)
			if err != nil || us != want {
				return false
			}
			in, _, err := INS(g, idx, q, vs)
			if err != nil || in != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchTreeInvariant asserts Definition 3.2 across all algorithms:
// every vertex is explored at most twice.
func TestSearchTreeInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		g := testkg.Random(rng, n, rng.Intn(30), rng.Intn(4)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(n) + 1, Seed: seed})
		c := pat.RandomConstraint(rng, g, 3)
		q := Query{
			Source:     graph.VertexID(rng.Intn(n)),
			Target:     graph.VertexID(rng.Intn(n)),
			Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
			Constraint: c,
		}
		_, s1, err := UIS(g, q)
		if err != nil || s1.SearchTreeNodes > 2*n || s1.PassedVertices > n {
			return false
		}
		_, s2, err := UISStar(g, q, nil)
		if err != nil || s2.SearchTreeNodes > 2*n || s2.PassedVertices > n {
			return false
		}
		_, s3, err := INS(g, idx, q, nil)
		if err != nil || s3.SearchTreeNodes > 2*n || s3.PassedVertices > n {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	if N.String() != "N" || F.String() != "F" || T.String() != "T" {
		t.Error("State.String broken")
	}
	if State(9).String() == "" {
		t.Error("unknown state renders empty")
	}
}
