package lscr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/pattern"
	"lscr/internal/testkg"
	"lscr/internal/testkg/pat"
)

// multiOracle answers a conjunctive query by exhaustive product-state BFS
// with exact (vertex, mask) visited states — no antichain pruning.
func multiOracle(g *graph.Graph, q MultiQuery) bool {
	k := len(q.Constraints)
	matchers := make([]*pattern.Matcher, k)
	for i, c := range q.Constraints {
		m, err := pattern.NewMatcher(g, c)
		if err != nil {
			panic(err)
		}
		matchers[i] = m
	}
	full := uint16(1)<<uint(k) - 1
	bits := func(v graph.VertexID) uint16 {
		var b uint16
		for i, m := range matchers {
			if m.Check(v) {
				b |= 1 << uint(i)
			}
		}
		return b
	}
	type state struct {
		v graph.VertexID
		m uint16
	}
	startM := bits(q.Source)
	if q.Source == q.Target && startM == full {
		return true
	}
	seen := map[state]bool{{q.Source, startM}: true}
	queue := []state{{q.Source, startM}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Out(cur.v) {
			if !q.Labels.Contains(e.Label) {
				continue
			}
			ns := state{e.To, cur.m | bits(e.To)}
			if seen[ns] {
				continue
			}
			if ns.v == q.Target && ns.m == full {
				return true
			}
			seen[ns] = true
			queue = append(queue, ns)
		}
	}
	return false
}

func TestUISMultiSingleDegeneratesToUIS(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		g := testkg.Random(rng, n, rng.Intn(35), rng.Intn(4)+1)
		c := pat.RandomConstraint(rng, g, 3)
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		L := labelset.Set(rng.Uint64()) & g.LabelUniverse()
		a, _, err1 := UIS(g, Query{Source: s, Target: tt, Labels: L, Constraint: c})
		b, _, err2 := UISMulti(g, MultiQuery{Source: s, Target: tt, Labels: L,
			Constraints: []*pattern.Constraint{c}})
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestUISMultiAgainstOracleProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		g := testkg.Random(rng, n, rng.Intn(30), rng.Intn(4)+1)
		k := rng.Intn(3) + 1
		q := MultiQuery{
			Source: graph.VertexID(rng.Intn(n)),
			Target: graph.VertexID(rng.Intn(n)),
			Labels: labelset.Set(rng.Uint64()) & g.LabelUniverse(),
		}
		for i := 0; i < k; i++ {
			q.Constraints = append(q.Constraints, pat.RandomConstraint(rng, g, 2))
		}
		got, st, err := UISMulti(g, q)
		if err != nil {
			return false
		}
		if st.SearchTreeNodes > n*(1<<uint(k)) {
			return false // state-space bound
		}
		return got == multiOracle(g, q)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestUISMultiOrderIndependence(t *testing.T) {
	// The two constraints can be satisfied in either order along the
	// path: a chain x1(-S_a-) -> x2(-S_b-) -> t and the reverse.
	b := graph.NewBuilder()
	p := b.Label("p")
	mark := b.Label("mark")
	s := b.Vertex("s")
	a1 := b.Vertex("a1")
	b1 := b.Vertex("b1")
	tt := b.Vertex("t")
	ka := b.Vertex("Ka")
	kb := b.Vertex("Kb")
	b.AddEdge(s, p, a1)
	b.AddEdge(a1, p, b1)
	b.AddEdge(b1, p, tt)
	b.AddEdge(a1, mark, ka)
	b.AddEdge(b1, mark, kb)
	g := b.Build()

	consA := &pattern.Constraint{Focus: "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: mark, Object: pattern.C(ka)}}}
	consB := &pattern.Constraint{Focus: "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: mark, Object: pattern.C(kb)}}}

	q := MultiQuery{Source: s, Target: tt, Labels: labelset.New(p),
		Constraints: []*pattern.Constraint{consA, consB}}
	got, _, err := UISMulti(g, q)
	if err != nil || !got {
		t.Fatalf("A-then-B order: %v %v", got, err)
	}
	q.Constraints = []*pattern.Constraint{consB, consA}
	got, _, err = UISMulti(g, q)
	if err != nil || !got {
		t.Fatalf("B-then-A order: %v %v", got, err)
	}
	// Requiring a third, unsatisfiable constraint fails.
	consC := &pattern.Constraint{Focus: "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: mark, Object: pattern.C(s)}}}
	q.Constraints = append(q.Constraints, consC)
	got, _, err = UISMulti(g, q)
	if err != nil || got {
		t.Fatalf("unsatisfiable conjunct: %v %v", got, err)
	}
}

func TestUISMultiRevisit(t *testing.T) {
	// Satisfying both constraints requires traversing the cycle twice:
	// s -> a -> s -> b -> t where a satisfies S_a and b satisfies S_b,
	// but a is only reachable via a detour off the s->b->t spine.
	b := graph.NewBuilder()
	p := b.Label("p")
	mark := b.Label("mark")
	s := b.Vertex("s")
	a := b.Vertex("a")
	bb := b.Vertex("b")
	tt := b.Vertex("t")
	ka := b.Vertex("Ka")
	kb := b.Vertex("Kb")
	b.AddEdge(s, p, a)
	b.AddEdge(a, p, s) // detour back
	b.AddEdge(s, p, bb)
	b.AddEdge(bb, p, tt)
	b.AddEdge(a, mark, ka)
	b.AddEdge(bb, mark, kb)
	g := b.Build()
	consA := &pattern.Constraint{Focus: "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: mark, Object: pattern.C(ka)}}}
	consB := &pattern.Constraint{Focus: "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: mark, Object: pattern.C(kb)}}}
	q := MultiQuery{Source: s, Target: tt, Labels: labelset.New(p),
		Constraints: []*pattern.Constraint{consA, consB}}
	got, st, err := UISMulti(g, q)
	if err != nil || !got {
		t.Fatalf("revisit walk not found: %v %v", got, err)
	}
	if st.SearchTreeNodes <= st.PassedVertices {
		t.Error("no vertex entered a second state — recall did not happen")
	}
}

// validMultiWitness checks a witness against its query.
func validMultiWitness(g *graph.Graph, q MultiQuery, w *MultiWitness) bool {
	cur := q.Source
	onWalk := map[graph.VertexID]bool{cur: true}
	for _, h := range w.Hops {
		if h.From != cur || !q.Labels.Contains(h.Label) || !g.HasEdge(h.From, h.Label, h.To) {
			return false
		}
		cur = h.To
		onWalk[cur] = true
	}
	if cur != q.Target {
		return false
	}
	if len(w.SatisfiedBy) != len(q.Constraints) {
		return false
	}
	for i, v := range w.SatisfiedBy {
		if v == graph.NoVertex || !onWalk[v] {
			return false
		}
		m, err := pattern.NewMatcher(g, q.Constraints[i])
		if err != nil || !m.Check(v) {
			return false
		}
	}
	return true
}

func TestUISMultiWitnessOrderCase(t *testing.T) {
	// Reuse the order-independence fixture: the witness must name a1 for
	// consA and b1 for consB.
	b := graph.NewBuilder()
	p := b.Label("p")
	mark := b.Label("mark")
	s := b.Vertex("s")
	a1 := b.Vertex("a1")
	b1 := b.Vertex("b1")
	tt := b.Vertex("t")
	ka := b.Vertex("Ka")
	kb := b.Vertex("Kb")
	b.AddEdge(s, p, a1)
	b.AddEdge(a1, p, b1)
	b.AddEdge(b1, p, tt)
	b.AddEdge(a1, mark, ka)
	b.AddEdge(b1, mark, kb)
	g := b.Build()
	consA := &pattern.Constraint{Focus: "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: mark, Object: pattern.C(ka)}}}
	consB := &pattern.Constraint{Focus: "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: mark, Object: pattern.C(kb)}}}
	q := MultiQuery{Source: s, Target: tt, Labels: labelset.New(p),
		Constraints: []*pattern.Constraint{consA, consB}}
	ok, w, _, err := UISMultiWitness(g, q)
	if err != nil || !ok || w == nil {
		t.Fatalf("ok=%v w=%v err=%v", ok, w, err)
	}
	if !validMultiWitness(g, q, w) {
		t.Fatalf("invalid witness %+v", w)
	}
	if w.SatisfiedBy[0] != a1 || w.SatisfiedBy[1] != b1 {
		t.Fatalf("SatisfiedBy = %v, want [a1 b1]", w.SatisfiedBy)
	}
	// False answers carry no witness.
	q.Labels = 0
	ok, w, _, err = UISMultiWitness(g, q)
	if err != nil || ok || w != nil {
		t.Fatalf("false query: ok=%v w=%v err=%v", ok, w, err)
	}
}

// Property: whenever UISMulti answers true, UISMultiWitness produces a
// valid witness, and both agree.
func TestUISMultiWitnessProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		g := testkg.Random(rng, n, rng.Intn(30), rng.Intn(4)+1)
		k := rng.Intn(3) + 1
		q := MultiQuery{
			Source: graph.VertexID(rng.Intn(n)),
			Target: graph.VertexID(rng.Intn(n)),
			Labels: labelset.Set(rng.Uint64()) & g.LabelUniverse(),
		}
		for i := 0; i < k; i++ {
			q.Constraints = append(q.Constraints, pat.RandomConstraint(rng, g, 2))
		}
		plain, _, err1 := UISMulti(g, q)
		ok, w, _, err2 := UISMultiWitness(g, q)
		if err1 != nil || err2 != nil || plain != ok {
			return false
		}
		if !ok {
			return w == nil
		}
		return w != nil && validMultiWitness(g, q, w)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestUISMultiErrors(t *testing.T) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	if _, _, err := UISMulti(g, MultiQuery{Source: 0, Target: 1}); err != ErrNoConstraints {
		t.Errorf("no constraints: %v", err)
	}
	many := make([]*pattern.Constraint, MaxMultiConstraints+1)
	for i := range many {
		many[i] = s0
	}
	if _, _, err := UISMulti(g, MultiQuery{Source: 0, Target: 1, Constraints: many}); err == nil {
		t.Error("17 constraints accepted")
	}
	if _, _, err := UISMulti(g, MultiQuery{Source: 99, Target: 0,
		Constraints: []*pattern.Constraint{s0}}); err != ErrBadQuery {
		t.Errorf("bad endpoints: %v", err)
	}
	bad := &pattern.Constraint{Focus: "x"}
	if _, _, err := UISMulti(g, MultiQuery{Source: 0, Target: 1,
		Constraints: []*pattern.Constraint{bad}}); err == nil {
		t.Error("invalid constraint accepted")
	}
}
