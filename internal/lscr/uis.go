package lscr

import (
	"lscr/internal/graph"
	"lscr/internal/pattern"
)

// UIS answers the LSCR query q on g with the uninformed search of
// Algorithm 1. It evaluates the substructure constraint per passed vertex
// with SCck and can revisit a vertex once more after a satisfying vertex
// upgrades the frontier (the recall ability DFS/BFS lack, §3).
//
// Time complexity: O(|V|·(|V_S|+|E_S|+|E_?|) + |E|) (Theorem 3.3).
func UIS(g *graph.Graph, q Query) (bool, Stats, error) {
	return uisRun(g, q, nil)
}

// UISTraced is UIS with a Tracer observing every close-state transition
// (the search tree of Definition 3.2, Figure 4).
func UISTraced(g *graph.Graph, q Query, tr Tracer) (bool, Stats, error) {
	return uisRun(g, q, tr)
}

func uisRun(g *graph.Graph, q Query, tr Tracer) (bool, Stats, error) {
	if err := validate(g, q); err != nil {
		return false, Stats{}, err
	}
	m, err := pattern.NewMatcher(g, q.Constraint)
	if err != nil {
		return false, Stats{}, err
	}
	sc := getScratch(g.NumVertices())
	defer putScratch(sc)
	close := newCloseMap(sc)
	scck := 0
	check := func(v graph.VertexID) State {
		scck++
		if m.Check(v) {
			return T
		}
		return F
	}

	// sat[v] records, for T-marked vertices, the satisfying vertex whose
	// discovery put v's subtree into the T state — the witness anchor.
	sat := sc.satTable(g.NumVertices())

	// Line 1-2: stack with s; close[s] <- SCck(s, S).
	stack := []graph.VertexID{q.Source}
	close.set(q.Source, check(q.Source))
	if close.get(q.Source) == T {
		sat[q.Source] = uint32(q.Source)
	}
	if tr != nil {
		tr.Transition(q.Source, close.get(q.Source), graph.NoVertex, 0, false)
	}

	// A zero-length path from s suffices when s = t and s satisfies S.
	if q.Source == q.Target && close.get(q.Source) == T {
		return true, close.statsSat(scck, q.Source), nil
	}

	// Lines 3-11.
	ic := interruptCheck{fn: q.Interrupt}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// The label-run view walks only the runs inside q.Labels, so edges
		// outside the constraint are never touched. The run scan itself is
		// ticked up front so cancellation stays prompt even when every run
		// is rejected (on a WithoutLabelIndex view Len() is the degree,
		// restoring the per-edge accounting of the pre-CSR layout).
		rs := g.OutRuns(u)
		if err := ic.tickN(rs.Len()); err != nil {
			return false, Stats{}, err
		}
		for ri, n := 0, rs.Len(); ri < n; ri++ {
			if !q.Labels.Contains(rs.Label(ri)) {
				continue
			}
			run := rs.Run(ri)
			if err := ic.tickN(len(run)); err != nil {
				return false, Stats{}, err
			}
			for _, e := range run {
				v := e.To
				switch {
				case close.get(u) == T && close.get(v) != T:
					// Case 1: s -L,S-> u and u -L-> v, so s -L,S-> v.
					close.set(v, T)
					sat[v] = sat[u]
					stack = append(stack, v)
					if tr != nil {
						tr.Transition(v, T, u, e.Label, false)
					}
				case close.get(v) == N:
					// Case 2: first visit; close[v] <- SCck(v, S).
					st := check(v)
					close.set(v, st)
					if st == T {
						sat[v] = uint32(v)
					}
					stack = append(stack, v)
					if tr != nil {
						tr.Transition(v, st, u, e.Label, false)
					}
				default:
					continue
				}
				// Lines 10-11.
				if v == q.Target && close.get(v) == T {
					return true, close.statsSat(scck, graph.VertexID(sat[v])), nil
				}
			}
		}
	}
	return false, close.stats(scck), nil
}

// UISWithTreeSize runs UIS and returns the search-tree size |T| alongside
// the answer; the workload generator of §6.1.1 filters queries by |T|.
func UISWithTreeSize(g *graph.Graph, q Query) (ans bool, treeSize int, err error) {
	ans, st, err := UIS(g, q)
	return ans, st.SearchTreeNodes, err
}
