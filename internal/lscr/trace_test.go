package lscr

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/testkg"
	"lscr/internal/testkg/pat"
)

func TestSearchTreeUIS(t *testing.T) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	q := Query{
		Source: ids["v3"], Target: ids["v4"],
		Labels:     lset(t, g, "likes", "hates", "friendOf"),
		Constraint: s0,
	}
	var tree SearchTree
	ans, st, err := UISTraced(g, q, &tree)
	if err != nil || !ans {
		t.Fatalf("%v %v", ans, err)
	}
	if len(tree.Nodes) != st.SearchTreeNodes {
		t.Fatalf("tree has %d nodes, stats say %d", len(tree.Nodes), st.SearchTreeNodes)
	}
	if tree.NodesPerVertex() > 2 {
		t.Fatalf("Definition 3.2 violated: %d nodes for one vertex", tree.NodesPerVertex())
	}
	// The recall walk forces both a vF and a vT node for v4.
	sum := tree.Summary()
	if sum[T] == 0 || sum[F] == 0 {
		t.Fatalf("summary = %v, want both F and T nodes", sum)
	}
	if len(tree.Vertices()) != st.PassedVertices {
		t.Fatalf("distinct vertices %d != passed %d", len(tree.Vertices()), st.PassedVertices)
	}
}

func TestSearchTreeDOT(t *testing.T) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	q := Query{
		Source: ids["v0"], Target: ids["v4"],
		Labels: lset(t, g, "likes", "follows"), Constraint: s0,
	}
	var tree SearchTree
	if _, _, err := UISTraced(g, q, &tree); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteDOT(&buf, "uis", func(v graph.VertexID) string { return g.VertexName(v) }); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{"digraph", "color=red", "color=blue", "v0_F"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Nil resolver uses numeric labels.
	buf.Reset()
	if err := tree.WriteDOT(&buf, "uis", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "_F") {
		t.Error("numeric DOT broken")
	}
}

func TestSearchTreeUISStarInvocations(t *testing.T) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	q := Query{
		Source: ids["v0"], Target: ids["v4"],
		Labels: g.LabelUniverse(), Constraint: s0,
	}
	var tree SearchTree
	ans, _, err := UISStarTraced(g, q, nil, &tree)
	if err != nil || !ans {
		t.Fatalf("%v %v", ans, err)
	}
	if len(tree.Invocations) == 0 {
		t.Fatal("no LCS invocations recorded")
	}
	// The first invocation must be a B=F run from the source.
	if tree.Invocations[0].FromSat || tree.Invocations[0].SStar != ids["v0"] {
		t.Fatalf("first invocation = %+v", tree.Invocations[0])
	}
}

func TestSearchTreeINSViaIndex(t *testing.T) {
	// On a graph with landmarks on the path, INS marking through the
	// index must appear as viaIndex nodes.
	rng := rand.New(rand.NewSource(8))
	g := testkg.Random(rng, 100, 400, 4)
	idx := NewLocalIndex(g, IndexParams{K: 10, Seed: 2})
	c := manyMatchConstraint(g)
	var tree SearchTree
	found := false
	for probe := 0; probe < 30 && !found; probe++ {
		q := Query{
			Source:     graph.VertexID(rng.Intn(100)),
			Target:     graph.VertexID(rng.Intn(100)),
			Labels:     g.LabelUniverse(),
			Constraint: c,
		}
		tree = SearchTree{}
		if _, _, err := INSTraced(g, idx, q, nil, &tree); err != nil {
			t.Fatal(err)
		}
		for _, n := range tree.Nodes {
			if n.ViaIndex {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no viaIndex transitions observed across 30 queries")
	}
}

// Property: traced runs answer identically to untraced runs and the tree
// respects the 2-nodes-per-vertex bound.
func TestTracedEquivalenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		g := testkg.Random(rng, n, rng.Intn(30), rng.Intn(4)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(n) + 1, Seed: seed})
		c := pat.RandomConstraint(rng, g, 3)
		q := Query{
			Source:     graph.VertexID(rng.Intn(n)),
			Target:     graph.VertexID(rng.Intn(n)),
			Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
			Constraint: c,
		}
		a1, _, _ := UIS(g, q)
		var t1 SearchTree
		a2, _, _ := UISTraced(g, q, &t1)
		if a1 != a2 || t1.NodesPerVertex() > 2 {
			return false
		}
		b1, _, _ := UISStar(g, q, nil)
		var t2 SearchTree
		b2, _, _ := UISStarTraced(g, q, nil, &t2)
		if b1 != b2 || t2.NodesPerVertex() > 2 {
			return false
		}
		c1, _, _ := INS(g, idx, q, nil)
		var t3 SearchTree
		c2, _, _ := INSTraced(g, idx, q, nil, &t3)
		if c1 != c2 || t3.NodesPerVertex() > 2 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
