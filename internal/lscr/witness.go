package lscr

import (
	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// Hop is one edge of a witness path.
type Hop struct {
	From  graph.VertexID
	Label graph.Label
	To    graph.VertexID
}

// Witness is a concrete path certifying a true LSCR answer: every hop
// label belongs to the query's label constraint and Satisfying — a
// vertex on the path — satisfies the substructure constraint. For the
// paper's crime-detection scenario this is the evidence chain itself
// ("which middleman?").
type Witness struct {
	Hops       []Hop
	Satisfying graph.VertexID
}

// Vertices returns the path's vertex sequence (length len(Hops)+1; just
// the endpoint when the path is empty).
func (w *Witness) Vertices(s graph.VertexID) []graph.VertexID {
	out := []graph.VertexID{s}
	for _, h := range w.Hops {
		out = append(out, h.To)
	}
	return out
}

// FindWitness builds a witness for s -L,S-> t given a vertex vStar that
// satisfies S with s -L-> vStar and vStar -L-> t (the anchor every
// algorithm reports in Stats.Satisfying on a true answer). It
// concatenates two shortest label-constrained paths, s→vStar and
// vStar→t. The second result is false only if the premise does not hold.
func FindWitness(g *graph.Graph, s, t, vStar graph.VertexID, L labelset.Set) (*Witness, bool) {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	first, ok := shortestPath(g, s, vStar, L, sc)
	if !ok {
		return nil, false
	}
	second, ok := shortestPath(g, vStar, t, L, sc)
	if !ok {
		return nil, false
	}
	return &Witness{Hops: append(first, second...), Satisfying: vStar}, true
}

// shortestPath returns the hops of a shortest path from s to t using
// only labels in L (empty for s == t). The visited set, parent table
// and BFS queue all live in the pooled scratch — only the returned hop
// slice is allocated, so witness reconstruction stays allocation-free
// per passed vertex even on multi-million-vertex graphs.
func shortestPath(g *graph.Graph, s, t graph.VertexID, L labelset.Set, sc *scratch) ([]Hop, bool) {
	if s == t {
		return nil, true
	}
	n := g.NumVertices()
	sc.vis.next(n)
	par := sc.parTable(n)
	sc.vis.visit(s)
	queue := sc.queue[:0]
	queue = append(queue, s)
	defer func() { sc.queue = queue }()
	found := false
	for head := 0; head < len(queue) && !found; head++ {
		u := queue[head]
		it := g.OutLabeled(u, L)
		for run, ok := it.Next(); ok && !found; run, ok = it.Next() {
			for _, e := range run {
				if sc.vis.visited(e.To) {
					continue
				}
				sc.vis.visit(e.To)
				par[e.To] = bfsParent{from: u, label: e.Label}
				if e.To == t {
					found = true
					break
				}
				queue = append(queue, e.To)
			}
		}
	}
	if !found {
		return nil, false
	}
	var rev []Hop
	for v := t; v != s; {
		p := par[v]
		rev = append(rev, Hop{From: p.from, Label: p.label, To: v})
		v = p.from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// Valid checks the witness against a query: consecutive hops chain from
// s to t, every label is in L, and Satisfying lies on the path. It is
// used by tests and available to paranoid callers.
func (w *Witness) Valid(g *graph.Graph, q Query) bool {
	cur := q.Source
	onPath := cur == w.Satisfying
	for _, h := range w.Hops {
		if h.From != cur || !q.Labels.Contains(h.Label) || !g.HasEdge(h.From, h.Label, h.To) {
			return false
		}
		cur = h.To
		if cur == w.Satisfying {
			onPath = true
		}
	}
	return cur == q.Target && onPath
}
