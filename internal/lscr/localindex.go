package lscr

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// LocalIndex is the paper's lightweight index (Algorithm 3, §5.1). Unlike
// the traditional landmark index of [19], each landmark u is precomputed
// only within its own subgraph F(u) of the bijection F: I -> G built by a
// simultaneous multi-source BFS, which bounds the indexing cost
// (Theorems 5.3 and 5.4) independently of the number of landmarks.
//
// One index entry per landmark u consists of:
//
//	II[u]  — (vertex v in F(u)) -> M(u, v | F(u)), the CMS within F(u);
//	EIT[u] — (label set L) -> boundary vertices w outside F(u) known to be
//	         reachable from u whenever L ⊆ the query constraint
//	         (Theorem 5.1); the reversed form of EI[u];
//	D[u]   — (landmark x) -> number of EI[u] boundary pairs landing in
//	         F(x), an estimate of how strongly F(u) connects to F(x).
//
// A LocalIndex is immutable once NewLocalIndex returns; every accessor
// (II, Check, IIEntries, EITEntries, D, Rho, ...) only reads, so one
// index may serve any number of concurrent queries. ApplyMutations never
// modifies its receiver either: it returns a derived index sharing every
// untouched per-landmark structure (see maintain.go).
type LocalIndex struct {
	g          *graph.Graph
	landmarks  []graph.VertexID
	isLandmark []bool
	af         []graph.VertexID // AF attribute: region landmark, NoVertex if unassigned

	// iiSorted and eitSorted ARE the per-landmark II/EIT stores: flat
	// entry arrays in ascending key order, indexed by landmark index
	// (lmIdx), so parallel construction writes disjoint slice slots.
	// The sorted order is load-bearing twice over. IIEntries and
	// EITEntries drive INS's Cut/Push marking, and marking order feeds
	// the frontier queue's FIFO tie-break — enumerating a Go map here
	// would make INS's search order (and thus its Stats) different on
	// every run. And point lookups (II, Check) binary-search the same
	// arrays, so no map shadow of the entries needs to be built — which
	// is what lets a segment boot decode the index as a straight
	// sequential fill (see ReadIndexPayload).
	iiSorted  [][]iiEntry
	eitSorted [][]eitEntry

	// D as a dense k×k matrix over landmark indices, stored as one row
	// slice per landmark (all rows of a fresh build share one backing
	// array for locality); lmIdx maps a landmark vertex to its
	// row/column, -1 for non-landmarks. Query-time ρ lookups are on the
	// hot path of INS's priority queue. Per-row storage lets incremental
	// maintenance replace a single landmark's row without copying the
	// whole k×k matrix.
	dmat  [][]int32
	lmIdx []int32

	// dirty marks landmarks whose entries were invalidated by an edge
	// deletion since the last full (re)build; nil when no landmark is
	// dirty. A dirty landmark's II/EIT/D entries are stale upper bounds
	// and must not drive pruning; clean landmarks stay exact because a
	// landmark's entries depend only on edges whose source lies in its
	// own region (see maintain.go).
	dirty []bool

	literalRho bool
}

// newDMat allocates k rows of k int32 over a single backing array.
func newDMat(k int) [][]int32 {
	return dmatRows(make([]int32, k*k), k)
}

// dmatRows slices a k*k backing array into k capacity-trimmed rows, so
// a maintenance row swap can never scribble past its own row.
func dmatRows(backing []int32, k int) [][]int32 {
	rows := make([][]int32, k)
	for i := range rows {
		rows[i] = backing[i*k : (i+1)*k : (i+1)*k]
	}
	return rows
}

// IndexParams configures construction.
type IndexParams struct {
	// K is the number of landmarks; 0 means the paper's
	// k = log2(|V|)·√|V| (§5.1.2), capped at |V|.
	K int
	// Seed drives the random class selection of LandmarkSelect; fixed
	// seeds give reproducible indexes.
	Seed int64
	// ClassFraction is the fraction of schema classes randomly selected
	// to draw landmark instances from; 0 means 0.5. Ignored when the
	// schema is empty (degree-based fallback).
	ClassFraction float64
	// LiteralRho makes Rho return D(s.AF, t.AF) verbatim, the paper's
	// literal definition, instead of the repository's default negated
	// reading (see DESIGN.md §3). Exposed for the ρ-sign ablation bench.
	LiteralRho bool
	// Workers bounds the goroutines building per-landmark entries
	// (LocalFullIndex runs are independent). 0 means GOMAXPROCS; 1 means
	// sequential. The result is identical for any worker count.
	Workers int
}

// DefaultK returns the paper's landmark count for |V| = n.
func DefaultK(n int) int {
	if n == 0 {
		return 0
	}
	k := int(math.Log2(float64(n)) * math.Sqrt(float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// NewLocalIndex builds the index for g (Algorithm 3).
func NewLocalIndex(g *graph.Graph, p IndexParams) *LocalIndex {
	n := g.NumVertices()
	k := p.K
	if k <= 0 {
		k = DefaultK(n)
	}
	if k > n {
		k = n
	}
	idx := &LocalIndex{
		g:          g,
		isLandmark: make([]bool, n),
		af:         make([]graph.VertexID, n),
		lmIdx:      make([]int32, n),
		literalRho: p.LiteralRho,
	}
	for i := range idx.af {
		idx.af[i] = graph.NoVertex
		idx.lmIdx[i] = -1
	}
	idx.landmarkSelect(k, p) // Line 1.
	for i, u := range idx.landmarks {
		idx.lmIdx[u] = int32(i)
	}
	idx.iiSorted = make([][]iiEntry, len(idx.landmarks))
	idx.eitSorted = make([][]eitEntry, len(idx.landmarks))
	idx.dmat = newDMat(len(idx.landmarks))
	idx.bfsTraverse() // Line 2.

	// Lines 3-4: LocalFullIndex per landmark, parallelised. The passes
	// are independent: each writes only its own landmark's ii/eit slot
	// and D row, and reads only the immutable af/lmIdx arrays and the
	// graph, so no locking is needed beyond the work queue. Each worker
	// owns one liScratch, reused across its landmarks, so steady-state
	// construction allocates little beyond the entries that end up in
	// the index.
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(idx.landmarks) {
		workers = len(idx.landmarks)
	}
	if workers <= 1 {
		var sc liScratch
		for _, u := range idx.landmarks {
			idx.localFullIndex(u, &sc)
		}
		return idx
	}
	var wg sync.WaitGroup
	work := make(chan graph.VertexID)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc liScratch
			for u := range work {
				idx.localFullIndex(u, &sc)
			}
		}()
	}
	for _, u := range idx.landmarks {
		work <- u
	}
	close(work)
	wg.Wait()
	return idx
}

// iiEntry and eitEntry are the flattened (key, value) pairs of the
// ii/eit maps, in sorted-key order.
type iiEntry struct {
	v   graph.VertexID
	cms *labelset.CMS
}

type eitEntry struct {
	key labelset.Set
	ws  []graph.VertexID
}

// sortedIIEntries flattens a landmark's scratch II map into the stored
// ascending-vertex entry array. Construction and maintenance both work
// over a map (the BFS inserts by vertex key) and finalise through here.
func sortedIIEntries(m map[graph.VertexID]*labelset.CMS) []iiEntry {
	out := make([]iiEntry, 0, len(m))
	for v, c := range m {
		out = append(out, iiEntry{v: v, cms: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
	return out
}

// sortedEITEntries flattens a landmark's scratch EIT map into the stored
// ascending-key entry array.
func sortedEITEntries(m map[labelset.Set][]graph.VertexID) []eitEntry {
	out := make([]eitEntry, 0, len(m))
	for key, ws := range m {
		out = append(out, eitEntry{key: key, ws: ws})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// landmarkSelect implements the schema-driven selection of §5.1.2: pick a
// random set of classes from LS, then evenly mark k instances of the
// selected classes as landmarks. Selecting by raw degree would favour
// vertices whose incident edges carry only RDF vocabulary labels, making
// the index useless for constraints without those labels (§5.1.2). When
// the schema records no instances, it falls back to highest-degree
// selection and, in either case, pads with high-degree vertices if the
// selected classes provide fewer than k instances.
func (idx *LocalIndex) landmarkSelect(k int, p IndexParams) {
	g := idx.g
	rng := rand.New(rand.NewSource(p.Seed))
	frac := p.ClassFraction
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	var pool []graph.VertexID
	classes := g.Schema().Classes()
	if len(classes) > 0 {
		nSel := int(float64(len(classes)) * frac)
		if nSel < 1 {
			nSel = 1
		}
		perm := rng.Perm(len(classes))
		seen := make(map[graph.VertexID]bool)
		for _, ci := range perm[:nSel] {
			for _, v := range g.Schema().Instances(classes[ci]) {
				if !seen[v] {
					seen[v] = true
					pool = append(pool, v)
				}
			}
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	take := func(v graph.VertexID) {
		if !idx.isLandmark[v] {
			idx.isLandmark[v] = true
			idx.landmarks = append(idx.landmarks, v)
		}
	}
	if len(pool) >= k {
		// Evenly mark k instances across the pool.
		step := float64(len(pool)) / float64(k)
		for i := 0; i < k; i++ {
			take(pool[int(float64(i)*step)])
		}
	} else {
		for _, v := range pool {
			take(v)
		}
	}
	if len(idx.landmarks) < k {
		// Degree-ordered padding (also the schema-free fallback).
		order := make([]graph.VertexID, g.NumVertices())
		for i := range order {
			order[i] = graph.VertexID(i)
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := g.Degree(order[i]), g.Degree(order[j])
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
		for _, v := range order {
			if len(idx.landmarks) == k {
				break
			}
			take(v)
		}
	}
}

// bfsTraverse implements BFSTraverse (Lines 25-34): a simultaneous BFS
// from all landmarks, round-robin one step per landmark queue, assigning
// w.AF = u when landmark u's wave reaches w first. Regions are disjoint
// and may not cover all of G.
func (idx *LocalIndex) bfsTraverse() {
	g := idx.g
	explored := make([]bool, g.NumVertices())
	queues := make([][]graph.VertexID, 0, len(idx.landmarks))
	owners := make([]graph.VertexID, 0, len(idx.landmarks))
	for _, u := range idx.landmarks {
		explored[u] = true
		idx.af[u] = u
		queues = append(queues, []graph.VertexID{u})
		owners = append(owners, u)
	}
	for len(queues) > 0 {
		nextQ := queues[:0]
		nextO := owners[:0]
		for qi, q := range queues {
			u := owners[qi]
			v := q[0]
			q = q[1:]
			for _, e := range g.Out(v) {
				if explored[e.To] {
					continue
				}
				explored[e.To] = true
				idx.af[e.To] = u
				q = append(q, e.To)
			}
			if len(q) > 0 {
				nextQ = append(nextQ, q)
				nextO = append(nextO, u)
			}
		}
		queues = nextQ
		owners = nextO
	}
}

// liState is one (vertex, label set) element of the LocalFullIndex BFS
// queue.
type liState struct {
	v graph.VertexID
	l labelset.Set
}

// liScratch is the per-worker reusable state of the parallel build: the
// BFS queue's backing array survives across a worker's landmarks.
type liScratch struct {
	queue []liState
}

// localFullIndex implements LocalFullIndex(u) (Lines 5-15): a CMS BFS
// restricted to F(u). Pairs leaving the region feed EI[u], which is then
// reversed into EIT[u] and aggregated into D[u]. The result depends only
// on u, so the build order (and worker count) cannot change the index.
func (idx *LocalIndex) localFullIndex(u graph.VertexID, sc *liScratch) {
	g := idx.g
	ii := make(map[graph.VertexID]*labelset.CMS)
	ei := make(map[graph.VertexID]*labelset.CMS)
	queue := append(sc.queue[:0], liState{u, 0})
	defer func() { sc.queue = queue[:0] }()
	insert := func(m map[graph.VertexID]*labelset.CMS, v graph.VertexID, l labelset.Set) bool {
		c := m[v]
		if c == nil {
			c = labelset.NewCMS()
			m[v] = c
		}
		return c.Insert(l)
	}
	for head := 0; head < len(queue); head++ {
		st := queue[head]
		if !insert(ii, st.v, st.l) { // Line 10.
			continue
		}
		// Walk the CSR label runs: the extended label set st.l + e.Label is
		// constant per run, so it is computed once per run instead of once
		// per edge.
		rs := g.OutRuns(st.v)
		for ri, n := 0, rs.Len(); ri < n; ri++ { // Lines 11-14.
			nl := st.l.Add(rs.Label(ri))
			for _, e := range rs.Run(ri) {
				if idx.regionIs(e.To, u) {
					queue = append(queue, liState{e.To, nl})
				} else {
					insert(ei, e.To, nl)
				}
			}
		}
	}
	idx.iiSorted[idx.lmIdx[u]] = sortedIIEntries(ii)

	// Line 15: EIT[u] and D[u] from EI[u].
	eit := make(map[labelset.Set][]graph.VertexID)
	row := idx.dmat[idx.lmIdx[u]]
	for w, c := range ei {
		for _, l := range c.Sets() {
			eit[l] = append(eit[l], w)
		}
		if a := idx.Region(w); a != graph.NoVertex {
			row[idx.lmIdx[a]]++
		}
	}
	for _, ws := range eit {
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	}
	idx.eitSorted[idx.lmIdx[u]] = sortedEITEntries(eit)
}

// Landmarks returns the chosen landmarks I.
func (idx *LocalIndex) Landmarks() []graph.VertexID { return idx.landmarks }

// IsLandmark reports whether v ∈ I. Vertices beyond the indexed range —
// interned by mutations after the index was built — are never landmarks.
func (idx *LocalIndex) IsLandmark(v graph.VertexID) bool {
	return int(v) < len(idx.isLandmark) && idx.isLandmark[v]
}

// Region returns v.AF — the landmark whose subgraph F contains v — or
// NoVertex when the traversal did not assign v to any region (including
// vertices interned after the index was built).
func (idx *LocalIndex) Region(v graph.VertexID) graph.VertexID {
	if int(v) >= len(idx.af) {
		return graph.NoVertex
	}
	return idx.af[v]
}

// regionIs reports Region(v) == u; bounds-safe for vertices interned
// after the index was built (their region is NoVertex, never a
// landmark).
func (idx *LocalIndex) regionIs(v, u graph.VertexID) bool {
	return int(v) < len(idx.af) && idx.af[v] == u
}

// Graph returns the graph view the index's entries describe: the build
// graph for a fresh index, the post-batch view for one derived by
// ApplyMutations.
func (idx *LocalIndex) Graph() *graph.Graph { return idx.g }

// ExactFor reports whether the index's clean-landmark entries describe
// exactly the graph view g — it was either built for g or incrementally
// maintained up to g. A stale index (g has moved on without the index
// being maintained) must not drive pruning.
func (idx *LocalIndex) ExactFor(g *graph.Graph) bool {
	return idx != nil && idx.g == g
}

// Dirty reports whether landmark w's entries were invalidated by an edge
// deletion since the last full (re)build. Dirty landmarks are excluded
// from INS's Check/Cut/Push pruning and expanded like ordinary vertices;
// compaction rebuilds the index and clears all dirtiness.
func (idx *LocalIndex) Dirty(w graph.VertexID) bool {
	if idx.dirty == nil {
		return false
	}
	li := idx.lm(w)
	return li >= 0 && idx.dirty[li]
}

// DirtyLandmarks returns the number of landmarks currently invalidated
// by deletions.
func (idx *LocalIndex) DirtyLandmarks() int {
	n := 0
	for _, d := range idx.dirty {
		if d {
			n++
		}
	}
	return n
}

// lm returns the landmark index of u, or -1 for non-landmarks and
// vertices beyond the indexed range.
func (idx *LocalIndex) lm(u graph.VertexID) int32 {
	if int(u) >= len(idx.lmIdx) {
		return -1
	}
	return idx.lmIdx[u]
}

// iiAt binary-searches landmark li's II entries for vertex v; nil when
// v is outside F(landmarks[li]). The array replaces the map the index
// used to carry: II holds ~|F(u)| entries, so the search is a dozen
// probes of one cache-resident slice — and boot-time decode never has
// to populate a hash table.
func (idx *LocalIndex) iiAt(li int32, v graph.VertexID) *labelset.CMS {
	s := idx.iiSorted[li]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].v < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo].v == v {
		return s[lo].cms
	}
	return nil
}

// II returns M(u, v | F(u)) for landmark u, or nil when u is not a
// landmark or v is outside F(u).
func (idx *LocalIndex) II(u, v graph.VertexID) *labelset.CMS {
	li := idx.lm(u)
	if li < 0 {
		return nil
	}
	return idx.iiAt(li, v)
}

// Check implements the Check(II[w], t*) of Algorithm 4 line 22: whether
// the landmark w reaches t (a vertex of F(w)) within its region under L.
func (idx *LocalIndex) Check(w, t graph.VertexID, L labelset.Set) bool {
	li := idx.lm(w)
	return li >= 0 && idx.iiAt(li, t).Covers(L)
}

// IIEntries calls fn for every (vertex, CMS) pair of II[u] whose CMS
// covers L — the vertices Cut(II[u]) marks. Enumeration follows the
// materialised sorted order so a query's marking sequence (and thus
// INS's Stats) is identical on every run.
func (idx *LocalIndex) IIEntries(u graph.VertexID, L labelset.Set, fn func(graph.VertexID)) {
	li := idx.lm(u)
	if li < 0 {
		return
	}
	for _, e := range idx.iiSorted[li] {
		if e.cms.Covers(L) {
			fn(e.v)
		}
	}
}

// EITEntries calls fn for every boundary vertex of EIT[u] whose key label
// set is a subset of L — the vertices Push(EIT[u]) enqueues (Theorem 5.1).
// Enumeration follows the materialised sorted order (see IIEntries).
func (idx *LocalIndex) EITEntries(u graph.VertexID, L labelset.Set, fn func(graph.VertexID)) {
	li := idx.lm(u)
	if li < 0 {
		return
	}
	for _, e := range idx.eitSorted[li] {
		if !e.key.SubsetOf(L) {
			continue
		}
		for _, w := range e.ws {
			fn(w)
		}
	}
}

// D returns D(u, x): the boundary-pair count from F(u) into F(x). Zero
// when unknown or when either vertex is not a landmark.
func (idx *LocalIndex) D(u, x graph.VertexID) int {
	iu, ix := idx.lm(u), idx.lm(x)
	if iu < 0 || ix < 0 {
		return 0
	}
	return int(idx.dmat[iu][ix])
}

// Rho is the estimated closeness used by INS's evaluation function. The
// paper defines ρ(s,t) = D(s.AF, t.AF) and prefers small ρ; since D counts
// inter-region connections (more connections = closer), this
// implementation negates D so that "smaller ρ" means "more strongly
// connected" (see DESIGN.md §3 and the BenchmarkAblationRho bench).
// Vertices outside every region get the worst estimate.
func (idx *LocalIndex) Rho(u, t graph.VertexID) int {
	au, at := idx.Region(u), idx.Region(t)
	if au == graph.NoVertex || at == graph.NoVertex {
		return 0
	}
	if au == at {
		return -1 << 30 // same region: closest under either reading
	}
	d := int(idx.dmat[idx.lmIdx[au]][idx.lmIdx[at]])
	if idx.literalRho {
		return d
	}
	return -d
}

// Entries returns the number of stored minimal label sets across II plus
// boundary slots across EIT.
func (idx *LocalIndex) Entries() int {
	n := 0
	for _, entries := range idx.iiSorted {
		for _, e := range entries {
			n += e.cms.Len()
		}
	}
	for _, entries := range idx.eitSorted {
		for _, e := range entries {
			n += len(e.ws)
		}
	}
	return n
}

// SizeBytes estimates the index footprint: region arrays plus 8 bytes per
// stored label set, 16 bytes per map slot, 4 bytes per boundary vertex.
func (idx *LocalIndex) SizeBytes() int64 {
	sz := int64(len(idx.af)) * 5 // af + isLandmark
	for _, entries := range idx.iiSorted {
		for _, e := range entries {
			sz += 16 + int64(e.cms.Len())*8
		}
	}
	for _, entries := range idx.eitSorted {
		for _, e := range entries {
			sz += 8 + int64(len(e.ws))*4
		}
	}
	sz += int64(len(idx.dmat)*len(idx.dmat)) * 4
	return sz
}
