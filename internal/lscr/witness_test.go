package lscr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/pattern"
	"lscr/internal/testkg"
	"lscr/internal/testkg/pat"
)

func TestWitnessRunningExample(t *testing.T) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	q := Query{
		Source: ids["v0"], Target: ids["v4"],
		Labels:     lset(t, g, "likes", "follows"),
		Constraint: s0,
	}
	ans, st, err := UIS(g, q)
	if err != nil || !ans {
		t.Fatalf("UIS = %v, %v", ans, err)
	}
	if st.Satisfying != ids["v2"] {
		t.Fatalf("satisfying anchor = %v, want v2 (the only S0 vertex on a {likes,follows} path)", st.Satisfying)
	}
	w, ok := FindWitness(g, q.Source, q.Target, st.Satisfying, q.Labels)
	if !ok {
		t.Fatal("witness not found")
	}
	if !w.Valid(g, q) {
		t.Fatalf("invalid witness %+v", w)
	}
	// The only valid witness is v0 -likes-> v2 -follows-> v4.
	if len(w.Hops) != 2 || w.Hops[0].To != ids["v2"] || w.Hops[1].To != ids["v4"] {
		t.Fatalf("witness hops = %+v", w.Hops)
	}
}

func TestWitnessRecallWalk(t *testing.T) {
	// §3's example: v3 -> v4 under {likes,hates,friendOf} requires the
	// walk through v1. The witness revisits v4.
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	q := Query{
		Source: ids["v3"], Target: ids["v4"],
		Labels:     lset(t, g, "likes", "hates", "friendOf"),
		Constraint: s0,
	}
	ans, st, err := UIS(g, q)
	if err != nil || !ans {
		t.Fatalf("UIS = %v, %v", ans, err)
	}
	w, ok := FindWitness(g, q.Source, q.Target, st.Satisfying, q.Labels)
	if !ok || !w.Valid(g, q) {
		t.Fatalf("witness invalid: %+v", w)
	}
	if st.Satisfying != ids["v1"] {
		t.Fatalf("anchor = %v, want v1", st.Satisfying)
	}
	// Any valid witness here must revisit v4: reach v1 (only via v4's
	// hates edge) and come back. The shortest is the 3-hop walk
	// v3-likes->v4-hates->v1-likes->v4; the paper illustrates the 4-hop
	// variant through v3.
	if len(w.Hops) < 3 {
		t.Fatalf("witness = %+v, want a walk revisiting v4", w.Hops)
	}
	visits := 0
	for _, h := range w.Hops {
		if h.To == ids["v4"] {
			visits++
		}
	}
	if visits < 2 {
		t.Fatalf("witness %+v does not revisit v4", w.Hops)
	}
}

func TestWitnessSEqualsT(t *testing.T) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	q := Query{
		Source: ids["v1"], Target: ids["v1"],
		Labels: g.LabelUniverse(), Constraint: s0,
	}
	ans, st, err := UIS(g, q)
	if err != nil || !ans {
		t.Fatalf("UIS = %v %v", ans, err)
	}
	w, ok := FindWitness(g, q.Source, q.Target, st.Satisfying, q.Labels)
	if !ok || !w.Valid(g, q) {
		t.Fatalf("zero-length witness invalid: %+v", w)
	}
	if len(w.Hops) != 0 {
		t.Fatalf("expected empty path, got %+v", w.Hops)
	}
	if got := w.Vertices(q.Source); len(got) != 1 || got[0] != ids["v1"] {
		t.Fatalf("Vertices = %v", got)
	}
}

func TestFindWitnessFailsWithoutPremise(t *testing.T) {
	g, ids := testkg.RunningExample()
	// v4 does not reach v0 at all.
	if _, ok := FindWitness(g, ids["v4"], ids["v0"], ids["v1"], g.LabelUniverse()); ok {
		t.Fatal("witness fabricated for unreachable pair")
	}
}

// Property: on true answers every algorithm's Satisfying anchor yields a
// valid witness; on false answers the anchor is NoVertex.
func TestWitnessProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(14) + 2
		g := testkg.Random(rng, n, rng.Intn(40), rng.Intn(5)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(n) + 1, Seed: seed})
		for probe := 0; probe < 4; probe++ {
			c := pat.RandomConstraint(rng, g, 3)
			q := Query{
				Source:     graph.VertexID(rng.Intn(n)),
				Target:     graph.VertexID(rng.Intn(n)),
				Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
				Constraint: c,
			}
			m, err := pattern.NewMatcher(g, c)
			if err != nil {
				return false
			}
			check := func(ans bool, st Stats, err error) bool {
				if err != nil {
					return false
				}
				if !ans {
					return st.Satisfying == graph.NoVertex
				}
				if st.Satisfying == graph.NoVertex || !m.Check(st.Satisfying) {
					return false
				}
				w, ok := FindWitness(g, q.Source, q.Target, st.Satisfying, q.Labels)
				return ok && w.Valid(g, q)
			}
			if ans, st, err := UIS(g, q); !check(ans, st, err) {
				return false
			}
			if ans, st, err := UISStar(g, q, nil); !check(ans, st, err) {
				return false
			}
			if ans, st, err := INS(g, idx, q, nil); !check(ans, st, err) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWitnessValidRejectsForgeries(t *testing.T) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	q := Query{
		Source: ids["v0"], Target: ids["v4"],
		Labels: lset(t, g, "likes", "follows"), Constraint: s0,
	}
	likes, _ := g.LabelByName("likes")
	follows, _ := g.LabelByName("follows")
	friendOf, _ := g.LabelByName("friendOf")
	good := &Witness{
		Hops: []Hop{
			{From: ids["v0"], Label: likes, To: ids["v2"]},
			{From: ids["v2"], Label: follows, To: ids["v4"]},
		},
		Satisfying: ids["v2"],
	}
	if !good.Valid(g, q) {
		t.Fatal("valid witness rejected")
	}
	// Broken chain.
	bad := &Witness{Hops: []Hop{{From: ids["v1"], Label: likes, To: ids["v4"]}}, Satisfying: ids["v1"]}
	if bad.Valid(g, q) {
		t.Error("witness not starting at s accepted")
	}
	// Label outside L.
	bad = &Witness{
		Hops: []Hop{
			{From: ids["v0"], Label: friendOf, To: ids["v1"]},
			{From: ids["v1"], Label: likes, To: ids["v4"]},
		},
		Satisfying: ids["v1"],
	}
	if bad.Valid(g, q) {
		t.Error("witness with out-of-constraint label accepted")
	}
	// Satisfying vertex not on path.
	bad = &Witness{
		Hops: []Hop{
			{From: ids["v0"], Label: likes, To: ids["v2"]},
			{From: ids["v2"], Label: follows, To: ids["v4"]},
		},
		Satisfying: ids["v1"],
	}
	if bad.Valid(g, q) {
		t.Error("witness with off-path satisfying vertex accepted")
	}
	// Nonexistent edge.
	bad = &Witness{Hops: []Hop{{From: ids["v0"], Label: likes, To: ids["v4"]}}, Satisfying: ids["v0"]}
	if bad.Valid(g, q) {
		t.Error("witness with fabricated edge accepted")
	}
}
