package lscr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/testkg"
)

// mutStep applies one random batch of edge mutations to g and returns
// the new view plus the batch's op stream. Inserts may target brand-new
// vertices and labels; deletes always target a surviving edge instance.
func mutStep(rng *rand.Rand, g *graph.Graph, ops int) (*graph.Graph, []graph.EdgeOp) {
	d := graph.NewDelta(g)
	var triples []graph.Triple
	g.Triples(func(t graph.Triple) bool {
		triples = append(triples, t)
		return true
	})
	for i := 0; i < ops; i++ {
		switch {
		case len(triples) > 0 && rng.Intn(3) == 0:
			tr := triples[rng.Intn(len(triples))]
			if err := d.DeleteEdge(tr.Subject, tr.Label, tr.Object); err != nil {
				continue // instance already exhausted by an earlier staged delete
			}
		case rng.Intn(5) == 0:
			// Fresh vertex (sometimes fresh label): exercises the
			// beyond-indexed-range paths.
			s := fmt.Sprintf("fresh%d", rng.Intn(8))
			t := fmt.Sprintf("fresh%d", rng.Intn(8))
			l := fmt.Sprintf("freshl%d", rng.Intn(2))
			if rng.Intn(2) == 0 {
				t = g.VertexName(graph.VertexID(rng.Intn(g.NumVertices())))
			}
			if err := d.AddEdgeNames(s, l, t); err != nil {
				continue
			}
		default:
			s := graph.VertexID(rng.Intn(d.NewVertices() + g.NumVertices()))
			t := graph.VertexID(rng.Intn(d.NewVertices() + g.NumVertices()))
			l := graph.Label(rng.Intn(g.NumLabels()))
			if err := d.AddEdge(s, l, t); err != nil {
				continue
			}
		}
	}
	ops2 := d.EdgeOps()
	g2, err := d.Commit()
	if err != nil {
		panic(err)
	}
	return g2, ops2
}

// TestMaintainStructuralEquivalence is the core exactness property: after
// every batch of a random mutation script, the incrementally maintained
// index is structurally identical — materialised II/EIT enumeration
// orders, D rows, dirty flags — to a from-scratch frozen-assignment
// rebuild on the batch's final view.
func TestMaintainStructuralEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(24) + 4
		g := testkg.Random(rng, n, rng.Intn(3*n), rng.Intn(3)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(n) + 1, Seed: seed})
		parentEntries := idx.Entries()
		cur := idx
		for batch := 0; batch < 5; batch++ {
			g2, ops := mutStep(rng, cur.Graph(), rng.Intn(8)+1)
			next, _ := cur.ApplyMutations(g2, ops)
			if !next.ExactFor(g2) {
				t.Logf("seed %d batch %d: derived index not bound to new view", seed, batch)
				return false
			}
			if err := next.EqualStructure(next.RebuildFrozen(g2)); err != nil {
				t.Logf("seed %d batch %d: %v", seed, batch, err)
				return false
			}
			cur = next
		}
		// Copy-on-write: the original index must be untouched by every
		// derivation along the way.
		if idx.Entries() != parentEntries || !idx.ExactFor(g) {
			t.Logf("seed %d: parent index mutated by derivation", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMaintainInsertOnlyStaysClean: insert-only scripts never invalidate
// a landmark, so the maintained index keeps every landmark prunable.
func TestMaintainInsertOnlyStaysClean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testkg.Random(rng, 30, 90, 3)
	cur := NewLocalIndex(g, IndexParams{K: 8, Seed: 7})
	for batch := 0; batch < 6; batch++ {
		d := graph.NewDelta(cur.Graph())
		for i := 0; i < 6; i++ {
			s := graph.VertexID(rng.Intn(30))
			t2 := graph.VertexID(rng.Intn(30))
			if err := d.AddEdge(s, graph.Label(rng.Intn(3)), t2); err != nil {
				t.Fatal(err)
			}
		}
		ops := d.EdgeOps()
		g2, err := d.Commit()
		if err != nil {
			t.Fatal(err)
		}
		var mb MaintBatch
		cur, mb = cur.ApplyMutations(g2, ops)
		if mb.LandmarksInvalidated != 0 || cur.DirtyLandmarks() != 0 {
			t.Fatalf("batch %d: insert-only script dirtied landmarks: %+v", batch, mb)
		}
		if err := cur.EqualStructure(cur.RebuildFrozen(g2)); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
}

// TestMaintainDeleteDirtiesOnlySourceRegion: a deletion invalidates
// exactly the landmark owning the deleted edge's source region — every
// other landmark stays exact and prunable.
func TestMaintainDeleteDirtiesOnlySourceRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testkg.Random(rng, 40, 160, 3)
	idx := NewLocalIndex(g, IndexParams{K: 10, Seed: 11})
	var victim graph.Triple
	found := false
	g.Triples(func(tr graph.Triple) bool {
		if idx.Region(tr.Subject) != graph.NoVertex {
			victim, found = tr, true
			return false
		}
		return true
	})
	if !found {
		t.Skip("no edge sourced inside a region")
	}
	d := graph.NewDelta(g)
	if err := d.DeleteEdge(victim.Subject, victim.Label, victim.Object); err != nil {
		t.Fatal(err)
	}
	ops := d.EdgeOps()
	g2, err := d.Commit()
	if err != nil {
		t.Fatal(err)
	}
	cur, mb := idx.ApplyMutations(g2, ops)
	if mb.LandmarksInvalidated != 1 || cur.DirtyLandmarks() != 1 {
		t.Fatalf("one in-region delete invalidated %d landmarks (dirty=%d)", mb.LandmarksInvalidated, cur.DirtyLandmarks())
	}
	own := idx.Region(victim.Subject)
	for _, u := range cur.Landmarks() {
		if cur.Dirty(u) != (u == own) {
			t.Fatalf("landmark %d dirty=%v, want dirty only for %d", u, cur.Dirty(u), own)
		}
	}
	if err := cur.EqualStructure(cur.RebuildFrozen(g2)); err != nil {
		t.Fatal(err)
	}
	// The parent index is untouched.
	if idx.DirtyLandmarks() != 0 {
		t.Fatal("derivation dirtied the parent index")
	}
}

// countingTracer counts index-driven close-state transitions (Cut/Push
// markings) — the observable footprint of live landmark pruning.
type countingTracer struct{ viaIndex, transitions int }

func (c *countingTracer) Transition(v graph.VertexID, st State, parent graph.VertexID, label graph.Label, viaIndex bool) {
	c.transitions++
	if viaIndex {
		c.viaIndex++
	}
}
func (c *countingTracer) Invocation(sStar, tStar graph.VertexID, fromSat bool) {}

// TestMaintainPruningRecovers is the PR 5 regression: after insert-only
// workloads the maintained index must keep INS's landmark pruning live
// (index-driven markings occur, Stats bit-identical to a
// frozen-assignment rebuild), whereas the stale pre-batch index — the
// old blanket overlay-liveness behaviour — disables pruning entirely.
func TestMaintainPruningRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := testkg.Random(rng, 60, 240, 3)
	idx := NewLocalIndex(g, IndexParams{K: 12, Seed: 21})

	// Insert-only batch.
	d := graph.NewDelta(g)
	for i := 0; i < 24; i++ {
		if err := d.AddEdge(graph.VertexID(rng.Intn(60)), graph.Label(rng.Intn(3)), graph.VertexID(rng.Intn(60))); err != nil {
			t.Fatal(err)
		}
	}
	ops := d.EdgeOps()
	g2, err := d.Commit()
	if err != nil {
		t.Fatal(err)
	}
	maintained, _ := idx.ApplyMutations(g2, ops)
	oracle := maintained.RebuildFrozen(g2)
	cons := manyMatchConstraint(g2)

	prunedSomewhere := false
	for si := 0; si < 12; si++ {
		q := Query{
			Source:     graph.VertexID((si * 11) % 60),
			Target:     graph.VertexID((si*17 + 3) % 60),
			Labels:     g2.LabelUniverse(),
			Constraint: cons,
		}
		if si%2 == 1 {
			q.Labels = labelset.New(0, 1)
		}

		var mtr, otr, str countingTracer
		mok, mst, err := INSTraced(g2, maintained, q, nil, &mtr)
		if err != nil {
			t.Fatal(err)
		}
		ook, ost, err := INSTraced(g2, oracle, q, nil, &otr)
		if err != nil {
			t.Fatal(err)
		}
		// Maintained vs frozen rebuild: bit-identical Stats — INS has
		// recovered to static-index behaviour, not merely equal answers.
		if mok != ook || mst != ost {
			t.Fatalf("query %d: maintained INS (%v %+v) != frozen rebuild (%v %+v)", si, mok, mst, ook, ost)
		}
		if mtr.viaIndex > 0 {
			prunedSomewhere = true
		}

		// Stale index (the pre-batch one): pruning must be off — no
		// index-driven marking — and the answer still exact vs UIS.
		sok, _, err := INSTraced(g2, idx, q, nil, &str)
		if err != nil {
			t.Fatal(err)
		}
		if str.viaIndex != 0 {
			t.Fatalf("query %d: stale index still drove %d markings", si, str.viaIndex)
		}
		uok, _, err := UIS(g2, q)
		if err != nil {
			t.Fatal(err)
		}
		if mok != uok || sok != uok {
			t.Fatalf("query %d: answers diverge: maintained=%v stale=%v uis=%v", si, mok, sok, uok)
		}
	}
	if !prunedSomewhere {
		t.Fatal("no query exercised landmark pruning on the maintained index; workload too weak")
	}
}

// TestMaintainDirtyLandmarkExcluded: with a deletion-dirtied landmark,
// INS on the maintained index answers exactly like UIS (soundness:
// the stale entries must not be trusted), while clean landmarks keep
// pruning.
func TestMaintainDirtyLandmarkExcluded(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 10
		g := testkg.Random(rng, n, rng.Intn(4*n)+n, rng.Intn(3)+1)
		cur := NewLocalIndex(g, IndexParams{K: rng.Intn(8) + 2, Seed: seed})
		for batch := 0; batch < 3; batch++ {
			g2, ops := mutStep(rng, cur.Graph(), rng.Intn(10)+2)
			cur, _ = cur.ApplyMutations(g2, ops)
		}
		g = cur.Graph()
		cons := manyMatchConstraint(g)
		for si := 0; si < 8; si++ {
			q := Query{
				Source:     graph.VertexID(rng.Intn(n)),
				Target:     graph.VertexID(rng.Intn(n)),
				Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
				Constraint: cons,
			}
			iok, _, err := INS(g, cur, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			uok, _, err := UIS(g, q)
			if err != nil {
				t.Fatal(err)
			}
			if iok != uok {
				t.Logf("seed %d: INS=%v UIS=%v (dirty=%d) for %+v", seed, iok, uok, cur.DirtyLandmarks(), q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
