// Package buildinfo derives a human-readable version string from the
// data the Go toolchain embeds in every binary, so the CLIs' -version
// flags and the server's /healthz need no ldflags plumbing.
package buildinfo

import "runtime/debug"

// Version reports the main module's version, augmented with the VCS
// revision when the build embedded one (plain `go build` in a git
// checkout does). It never returns an empty string.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" {
		v = "(devel)"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if v == "(devel)" {
			return rev + dirty
		}
		return v + " (" + rev + dirty + ")"
	}
	return v
}
