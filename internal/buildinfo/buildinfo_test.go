package buildinfo

import "testing"

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() returned an empty string")
	}
}
