package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledEvalIsNilAndAllocationFree(t *testing.T) {
	DisarmAll()
	if Enabled() {
		t.Fatal("registry armed at test start")
	}
	if fp := Eval("nowhere"); fp != nil {
		t.Fatalf("Eval on disarmed registry = %v, want nil", fp)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if Eval("nowhere") != nil {
			t.Fatal("unexpected failure")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Eval allocates %.1f per call, want 0", allocs)
	}
}

func TestErrorOnceFiresExactlyOnce(t *testing.T) {
	defer DisarmAll()
	if err := Set("site-a", "error-once"); err != nil {
		t.Fatal(err)
	}
	fp := Eval("site-a")
	if fp == nil {
		t.Fatal("first Eval did not fire")
	}
	if !errors.Is(fp, ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) = false", fp)
	}
	if fp.Site != "site-a" || fp.Torn != -1 {
		t.Fatalf("Failure = %+v, want Site=site-a Torn=-1", fp)
	}
	for i := 0; i < 5; i++ {
		if fp := Eval("site-a"); fp != nil {
			t.Fatalf("Eval %d after once-fire = %v, want nil", i, fp)
		}
	}
	hits, fired := Hits("site-a")
	if hits != 1 || fired != 1 {
		t.Fatalf("hits, fired = %d, %d (disarmed site stops counting), want 1, 1", hits, fired)
	}
}

func TestErrorEveryN(t *testing.T) {
	defer DisarmAll()
	if err := Set("site-b", "error-every=3"); err != nil {
		t.Fatal(err)
	}
	var fires []int
	for i := 1; i <= 9; i++ {
		if Eval("site-b") != nil {
			fires = append(fires, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fires) != len(want) {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fires, want)
		}
	}
}

func TestTornCarriesPrefixLength(t *testing.T) {
	defer DisarmAll()
	if err := Set("site-c", "torn=7"); err != nil {
		t.Fatal(err)
	}
	fp := Eval("site-c")
	if fp == nil || fp.Torn != 7 {
		t.Fatalf("Eval = %+v, want Torn=7", fp)
	}
}

func TestDelaySleepsAndProceeds(t *testing.T) {
	defer DisarmAll()
	if err := Set("site-d", "delay=20ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if fp := Eval("site-d"); fp != nil {
		t.Fatalf("delay policy returned failure %v", fp)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay policy slept %v, want >= ~20ms", d)
	}
}

func TestProbabilisticGateIsDeterministicPerSeed(t *testing.T) {
	defer DisarmAll()
	run := func(seed int64) []bool {
		DisarmAll()
		Seed(seed)
		if err := Set("site-p", "error,p=0.5"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = Eval("site-p") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-hit schedule (suspicious rng wiring)")
	}
	Seed(1)
}

func TestArmMultiSpecAndClear(t *testing.T) {
	defer DisarmAll()
	if err := Arm("m-one=error-once; m-two=error-every=2"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Arm did not enable the registry")
	}
	if Eval("m-one") == nil {
		t.Fatal("m-one did not fire")
	}
	if Eval("m-two") != nil {
		t.Fatal("m-two fired on hit 1 with every=2")
	}
	if Eval("m-two") == nil {
		t.Fatal("m-two did not fire on hit 2")
	}
	Clear("m-two")
	if Eval("m-two") != nil {
		t.Fatal("cleared site still fires")
	}
	DisarmAll()
	if Enabled() {
		t.Fatal("DisarmAll left the registry armed")
	}
}

func TestBadSpecsRejected(t *testing.T) {
	defer DisarmAll()
	for _, spec := range []string{
		"",               // no mode
		"once",           // gate without mode
		"bogus",          // unknown term
		"error,delay=1s", // two modes
		"torn=-1",        // negative prefix
		"error-every=0",  // every < 1
		"error,p=1.5",    // probability out of range
		"delay=xyz",      // unparseable duration
	} {
		if err := Set("bad", spec); err == nil {
			t.Errorf("Set(%q) accepted, want error", spec)
		}
	}
	if Enabled() {
		t.Fatal("rejected specs armed the registry")
	}
	for _, ms := range []string{"=error", "no-equals"} {
		if err := Arm(ms); err == nil {
			t.Errorf("Arm(%q) accepted, want error", ms)
		}
	}
}

// BenchmarkEvalDisabled pins the zero-overhead claim: a disarmed site
// costs one atomic load.
func BenchmarkEvalDisabled(b *testing.B) {
	DisarmAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Eval("hot-path-site") != nil {
			b.Fatal("unexpected failure")
		}
	}
}
