// Package failpoint is a deterministic fault-injection registry for
// the I/O and cluster hot paths: named sites in production code call
// Eval, and tests (or an operator running the chaos tier) arm per-site
// policies — error, error-once, error-every-N, delay, torn-write —
// that decide when the site fires.
//
// The registry is process-global and zero-cost when disarmed: Eval is
// one atomic load and an immediate nil return until the first Set/Arm
// registers a site (allocation- and benchmark-asserted in the package
// tests), so sites can live on fsync/append/dispatch paths without a
// build tag.
//
// Activation:
//
//   - programmatic: failpoint.Set("wal-append", "torn=8,once")
//   - engine options: lscr.Options.Failpoints = "wal-append=error;seg-rename=error-once"
//   - environment: LSCR_FAILPOINTS with the same multi-site spec,
//     parsed at process init (the CLIs need no flag plumbing)
//
// Spec grammar — comma-separated terms, one mode plus optional gates:
//
//	error            fail with an injected error (the default mode)
//	error-once       fail on the first hit, then disarm (sugar: error,once)
//	error-every=N    fail on every Nth hit (sugar: error,every=N)
//	torn=K           fail like error, telling write sites to persist
//	                 only the first K bytes (a crash mid-write)
//	delay=D          sleep D per firing instead of failing (time.Duration)
//	once             gate: disarm the site after its first firing
//	every=N          gate: fire only on hits N, 2N, 3N…
//	p=F              gate: fire with probability F, from a per-site rand
//	                 seeded by Seed()^hash(site) — schedules replay
//	                 identically for a fixed seed
//
// Injected failures are *Failure values satisfying errors.Is(err,
// ErrInjected), so callers up the stack can tell injected faults from
// real ones.
package failpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected failure wraps.
var ErrInjected = errors.New("failpoint: injected fault")

// Failure is one injected fault. It is the error a failing site
// returns; Torn >= 0 additionally tells a write site to persist only
// the first Torn bytes before failing (simulating a crash mid-write).
type Failure struct {
	// Site names the failpoint that fired.
	Site string
	// Torn is the byte prefix a write site should persist before
	// failing; -1 means fail without writing anything.
	Torn int
}

func (f *Failure) Error() string { return "failpoint: injected fault at " + f.Site }

// Is makes errors.Is(err, ErrInjected) true for every injected fault.
func (f *Failure) Is(target error) bool { return target == ErrInjected }

// policy is one armed site's state. Counters and the rng serialize on
// mu; the registry lock is only held for lookup.
type policy struct {
	site  string
	mode  byte // 'e' error, 'd' delay
	torn  int  // -1 unless torn=K
	delay time.Duration
	once  bool
	every int64
	p     float64

	mu       sync.Mutex
	hits     int64
	fired    int64
	disarmed bool
	rng      *rand.Rand // non-nil only when p is set
}

var (
	// armed counts registered sites: the disabled fast path is this one
	// atomic load.
	armed atomic.Int64

	mu       sync.RWMutex
	registry = map[string]*policy{}
	seed     atomic.Int64
)

func init() {
	seed.Store(1)
	if s := os.Getenv("LSCR_FAILPOINT_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed.Store(v)
		}
	}
	if spec := os.Getenv("LSCR_FAILPOINTS"); spec != "" {
		if err := Arm(spec); err != nil {
			// Env activation has no error channel; a bad spec must not be
			// silently ignored into a green fault-free run.
			panic(fmt.Sprintf("failpoint: bad LSCR_FAILPOINTS: %v", err))
		}
	}
}

// Enabled reports whether any site is armed — the same check Eval's
// fast path makes.
func Enabled() bool { return armed.Load() != 0 }

// Eval is the hook production code places at a site: nil means proceed
// normally. With no site armed it is one atomic load and returns
// immediately, allocation-free. A delay policy sleeps here and returns
// nil; an error/torn policy returns the *Failure to surface.
func Eval(site string) *Failure {
	if armed.Load() == 0 {
		return nil
	}
	return eval(site)
}

func eval(site string) *Failure {
	mu.RLock()
	p := registry[site]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	return p.eval()
}

func (p *policy) eval() *Failure {
	p.mu.Lock()
	if p.disarmed {
		p.mu.Unlock()
		return nil
	}
	p.hits++
	if p.every > 1 && p.hits%p.every != 0 {
		p.mu.Unlock()
		return nil
	}
	if p.rng != nil && p.rng.Float64() >= p.p {
		p.mu.Unlock()
		return nil
	}
	p.fired++
	if p.once {
		p.disarmed = true
	}
	mode, torn, delay := p.mode, p.torn, p.delay
	p.mu.Unlock()

	if mode == 'd' {
		time.Sleep(delay)
		return nil
	}
	return &Failure{Site: p.site, Torn: torn}
}

// Set arms (or replaces) one site's policy from a spec string (see the
// package comment for the grammar).
func Set(site, spec string) error {
	p, err := parse(site, spec)
	if err != nil {
		return err
	}
	mu.Lock()
	if _, exists := registry[site]; !exists {
		armed.Add(1)
	}
	registry[site] = p
	mu.Unlock()
	return nil
}

// Clear disarms one site; unknown sites are a no-op.
func Clear(site string) {
	mu.Lock()
	if _, exists := registry[site]; exists {
		delete(registry, site)
		armed.Add(-1)
	}
	mu.Unlock()
}

// DisarmAll clears every armed site, restoring the zero-cost path —
// the heal step between chaos schedules.
func DisarmAll() {
	mu.Lock()
	for site := range registry {
		delete(registry, site)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Arm parses a multi-site activation string — "site=spec;site2=spec" —
// the format of LSCR_FAILPOINTS and lscr.Options.Failpoints.
func Arm(multiSpec string) error {
	for _, part := range strings.Split(multiSpec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, spec, ok := strings.Cut(part, "=")
		if !ok || site == "" {
			return fmt.Errorf("failpoint: bad activation %q (want site=spec)", part)
		}
		if err := Set(site, spec); err != nil {
			return err
		}
	}
	return nil
}

// Seed fixes the base seed of the probabilistic (p=) gates; each site's
// rng derives from it and the site name, so a schedule replays
// identically for a fixed seed regardless of arming order. It affects
// sites armed after the call.
func Seed(s int64) { seed.Store(s) }

// Hits reports how often an armed site was evaluated; Fired how often
// it actually injected (fired <= hits under gates). Both are 0 for
// unarmed sites.
func Hits(site string) (hits, fired int64) {
	mu.RLock()
	p := registry[site]
	mu.RUnlock()
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.fired
}

// parse compiles one spec string into a policy.
func parse(site, spec string) (*policy, error) {
	p := &policy{site: site, mode: 'e', torn: -1, every: 1}
	seenMode := false
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		key, val, hasVal := strings.Cut(term, "=")
		switch key {
		case "error":
			if err := p.setMode('e', &seenMode); err != nil {
				return nil, err
			}
		case "error-once":
			if err := p.setMode('e', &seenMode); err != nil {
				return nil, err
			}
			p.once = true
		case "error-every":
			if err := p.setMode('e', &seenMode); err != nil {
				return nil, err
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("failpoint: %s: bad error-every=%q", site, val)
			}
			p.every = n
		case "torn":
			if err := p.setMode('e', &seenMode); err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("failpoint: %s: bad torn=%q", site, val)
			}
			p.torn = n
		case "delay":
			if err := p.setMode('d', &seenMode); err != nil {
				return nil, err
			}
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("failpoint: %s: bad delay=%q", site, val)
			}
			p.delay = d
		case "once":
			if hasVal {
				return nil, fmt.Errorf("failpoint: %s: once takes no value", site)
			}
			p.once = true
		case "every":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("failpoint: %s: bad every=%q", site, val)
			}
			p.every = n
		case "p":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("failpoint: %s: bad p=%q", site, val)
			}
			p.p = f
			p.rng = rand.New(rand.NewSource(seed.Load() ^ int64(siteHash(site))))
		default:
			return nil, fmt.Errorf("failpoint: %s: unknown term %q", site, term)
		}
	}
	if !seenMode {
		return nil, fmt.Errorf("failpoint: %s: spec %q names no mode (error, error-once, error-every=N, torn=K, delay=D)", site, spec)
	}
	return p, nil
}

func (p *policy) setMode(mode byte, seen *bool) error {
	if *seen {
		return fmt.Errorf("failpoint: %s: more than one mode in spec", p.site)
	}
	*seen = true
	p.mode = mode
	return nil
}

func siteHash(site string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return h.Sum64()
}
