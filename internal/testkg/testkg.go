// Package testkg provides shared test fixtures: the paper's running
// example (Figure 3) reconstructed to satisfy every fact the text states
// about it, and a random KG generator for cross-validation tests.
package testkg

import (
	"math/rand"
	"strconv"

	"lscr/internal/graph"
)

// RunningExample builds G0 of Figure 3(a). The figure itself is not
// machine-readable, so the edge list is reconstructed from the facts the
// paper states about G0:
//
//   - M(v0,v3) = {{friendOf}} and
//     M(v0,v4) = {{friendOf,likes},{advisorOf,follows},{likes,follows}} (§2);
//   - S0 = (?x, {v3}, {}, {(?x,friendOf,v3),(v3,likes,?y)}) and only v1
//     and v2 satisfy S0 (§3: "only v1 and v2 could satisfy S0");
//   - with L={likes,hates,friendOf}, proving v3 -L,S0-> v4 requires the
//     path <v3,likes,v4,hates,v1,friendOf,v3,likes,v4> (§3), which pins
//     the edges v3-likes->v4, v4-hates->v1, v1-friendOf->v3;
//   - with L={likes,follows}: v0 -L,S0-> v4 holds and v0 -L,S0-> v3 does
//     not (§2 "Overall").
//
// The returned map names v0..v4.
func RunningExample() (*graph.Graph, map[string]graph.VertexID) {
	b := graph.NewBuilder()
	edges := [][3]string{
		{"v0", "friendOf", "v1"},
		{"v0", "advisorOf", "v2"},
		{"v0", "likes", "v2"},
		{"v1", "friendOf", "v3"},
		{"v2", "friendOf", "v3"},
		{"v1", "likes", "v4"},
		{"v3", "likes", "v4"},
		{"v2", "follows", "v4"},
		{"v4", "hates", "v1"},
	}
	for _, e := range edges {
		b.AddEdgeNames(e[0], e[1], e[2])
	}
	g := b.Build()
	ids := map[string]graph.VertexID{}
	for _, n := range []string{"v0", "v1", "v2", "v3", "v4"} {
		ids[n] = g.Vertex(n)
	}
	return g, ids
}

// Random generates a random edge-labeled multigraph with n vertices,
// m edges and nLabels labels, using rng. Vertex names are "u<i>"; label
// names are "l<i>".
func Random(rng *rand.Rand, n, m, nLabels int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.Vertex(vname(i))
	}
	for i := 0; i < nLabels; i++ {
		b.Label(lname(i))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(
			graph.VertexID(rng.Intn(n)),
			graph.Label(rng.Intn(nLabels)),
			graph.VertexID(rng.Intn(n)),
		)
	}
	return b.Build()
}

func vname(i int) string { return "u" + strconv.Itoa(i) }

func lname(i int) string { return "l" + strconv.Itoa(i) }
