// Package pat provides pattern-level test fixtures that packages above
// the pattern layer (lcr, lscr, workload, bench) share. It lives apart
// from testkg so that package pattern's own tests can use testkg without
// an import cycle.
package pat

import (
	"math/rand"

	"lscr/internal/graph"
	"lscr/internal/pattern"
)

// S0 returns the substructure constraint of Figure 3(b) for the running
// example graph: (?x, {v3}, {}, {(?x,friendOf,v3), (v3,likes,?y)}).
func S0(g *graph.Graph, ids map[string]graph.VertexID) *pattern.Constraint {
	friendOf, _ := g.LabelByName("friendOf")
	likes, _ := g.LabelByName("likes")
	return &pattern.Constraint{
		Focus: "x",
		Patterns: []pattern.TriplePattern{
			{Subject: pattern.V("x"), Label: friendOf, Object: pattern.C(ids["v3"])},
			{Subject: pattern.C(ids["v3"]), Label: likes, Object: pattern.V("y")},
		},
	}
}

// RandomConstraint generates a random substructure constraint with
// 1..maxPatterns triple patterns over g. The focus variable always occurs
// (Definition 2.2). Constants are random vertices; non-focus variables
// come from a pool of two names.
func RandomConstraint(rng *rand.Rand, g *graph.Graph, maxPatterns int) *pattern.Constraint {
	n := g.NumVertices()
	nl := g.NumLabels()
	if n == 0 || nl == 0 {
		panic("pat: empty graph")
	}
	vars := []string{"y", "z"}
	term := func() pattern.Term {
		switch rng.Intn(3) {
		case 0:
			return pattern.C(graph.VertexID(rng.Intn(n)))
		case 1:
			return pattern.V("x")
		default:
			return pattern.V(vars[rng.Intn(len(vars))])
		}
	}
	np := rng.Intn(maxPatterns) + 1
	c := &pattern.Constraint{Focus: "x"}
	for i := 0; i < np; i++ {
		c.Patterns = append(c.Patterns, pattern.TriplePattern{
			Subject: term(),
			Label:   graph.Label(rng.Intn(nl)),
			Object:  term(),
		})
	}
	// Guarantee the focus appears.
	if rng.Intn(2) == 0 {
		c.Patterns[0].Subject = pattern.V("x")
	} else {
		c.Patterns[0].Object = pattern.V("x")
	}
	return c
}
