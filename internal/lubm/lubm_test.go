package lubm

import (
	"testing"

	"lscr/internal/sparql"
)

func TestGenerateBasics(t *testing.T) {
	g := Generate(DefaultConfig(1))
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty graph")
	}
	// Density must approximate the paper's D1–D5 ratio |E|/|V| ≈ 3.5.
	d := g.Density()
	if d < 2.5 || d > 4.5 {
		t.Errorf("density = %.2f, want ≈ 3.5", d)
	}
	// Labels fit the 64-label universe with room to spare.
	if g.NumLabels() > 30 {
		t.Errorf("labels = %d", g.NumLabels())
	}
	// The schema store knows the classes the landmark selector needs.
	for _, c := range []string{ClassDepartment, ClassFullProfessor, ClassUndergraduateStudent} {
		if len(g.Schema().Instances(c)) == 0 {
			t.Errorf("no instances of %s in schema", c)
		}
	}
}

func TestGenerateScalesLinearly(t *testing.T) {
	g1 := Generate(DefaultConfig(1))
	g2 := Generate(DefaultConfig(2))
	r := float64(g2.NumVertices()) / float64(g1.NumVertices())
	if r < 1.7 || r > 2.3 {
		t.Errorf("vertex scale factor = %.2f, want ≈ 2", r)
	}
	r = float64(g2.NumEdges()) / float64(g1.NumEdges())
	if r < 1.7 || r > 2.3 {
		t.Errorf("edge scale factor = %.2f, want ≈ 2", r)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(DefaultConfig(1))
	b := Generate(DefaultConfig(1))
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("generator is not deterministic for equal seeds")
	}
}

// TestSelectivityRatios asserts the §6.1 characterisation of S1–S5 that
// the whole experimental design rests on.
func TestSelectivityRatios(t *testing.T) {
	g := Generate(DefaultConfig(2))
	eng := sparql.NewEngine(g)
	size := map[string]int{}
	for _, c := range Constraints() {
		vs, err := eng.Select(c.SPARQL)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		size[c.Name] = len(vs)
	}

	if size["S1"] == 0 {
		t.Fatal("V(S1) empty")
	}
	// |V(S1)|/|V| ≈ 1‰ (the paper's baseline; we accept 0.3‰..5‰).
	frac := float64(size["S1"]) / float64(g.NumVertices())
	if frac < 0.0003 || frac > 0.005 {
		t.Errorf("|V(S1)|/|V| = %.4f%%, want ≈ 0.1%%", 100*frac)
	}
	// |V(S2)|/|V(S1)| ≈ 50%.
	r := float64(size["S2"]) / float64(size["S1"])
	if r < 0.3 || r > 0.7 {
		t.Errorf("|V(S2)|/|V(S1)| = %.2f, want ≈ 0.5", r)
	}
	// |V(S3)|/|V(S1)| ≈ 120.
	r = float64(size["S3"]) / float64(size["S1"])
	if r < 60 || r > 240 {
		t.Errorf("|V(S3)|/|V(S1)| = %.1f, want ≈ 120", r)
	}
	// |V(S4)| ≈ |V(S1)|.
	r = float64(size["S4"]) / float64(size["S1"])
	if r < 0.4 || r > 2.5 {
		t.Errorf("|V(S4)|/|V(S1)| = %.2f, want ≈ 1", r)
	}
	// |V(S5)| = 1 exactly.
	if size["S5"] != 1 {
		t.Errorf("|V(S5)| = %d, want 1", size["S5"])
	}
}

func TestConstraintLookup(t *testing.T) {
	c, ok := Constraint("S3")
	if !ok || c.Name != "S3" {
		t.Fatal("Constraint(S3) failed")
	}
	if _, ok := Constraint("S9"); ok {
		t.Fatal("Constraint(S9) should not exist")
	}
	if len(Constraints()) != 5 {
		t.Fatalf("Constraints() = %d entries", len(Constraints()))
	}
}

func TestConstraintsCompile(t *testing.T) {
	g := Generate(DefaultConfig(1))
	for _, c := range Constraints() {
		q, err := sparql.Parse(c.SPARQL)
		if err != nil {
			t.Fatalf("%s does not parse: %v", c.Name, err)
		}
		cons, sat, err := q.Compile(g)
		if err != nil {
			t.Fatalf("%s does not compile: %v", c.Name, err)
		}
		if !sat {
			t.Fatalf("%s references unknown entities", c.Name)
		}
		if cons.Focus != "x" {
			t.Fatalf("%s focus = %q", c.Name, cons.Focus)
		}
	}
}

func TestTinyConfig(t *testing.T) {
	// A deliberately degenerate configuration must still produce a valid
	// graph (courses fallback path).
	cfg := Config{
		Universities: 1, Seed: 9, DeptsPerUniversity: 1,
		FullProfessors: 1, UndergradsPerDept: 1, GradsPerDept: 1,
		ResearchInterests: 1, PublicationsPerProfessor: 1,
	}
	g := Generate(cfg)
	if g.NumVertices() == 0 {
		t.Fatal("tiny config yields empty graph")
	}
}

func TestConfigForEdges(t *testing.T) {
	for _, target := range []int{1, 30000, 120000} {
		cfg := ConfigForEdges(target)
		if cfg.Universities < 1 {
			t.Fatalf("ConfigForEdges(%d): %d universities", target, cfg.Universities)
		}
		g := Generate(cfg)
		if g.NumEdges() < target {
			t.Errorf("ConfigForEdges(%d) generated only %d edges", target, g.NumEdges())
		}
	}
}
