// Package lubm generates synthetic university knowledge graphs in the
// shape of the Lehigh University Benchmark (LUBM [4]), which the paper
// uses for datasets D0–D5 (§6.1, Table 2), together with the five
// substructure constraints S1–S5 of Table 3.
//
// The generator is written from scratch (the original UBA tool is Java
// and not redistributable here); what matters to the paper's experiments
// is preserved and asserted by tests:
//
//   - the ontology shape (universities → departments → faculty, students,
//     courses, research groups, publications) and the ub:* properties
//     S1–S5 reference;
//   - the selectivity ratios of §6.1: |V(S2)|/|V(S1)| ≈ 50%,
//     |V(S3)|/|V(S1)| ≈ 120, |V(S4)| ≈ |V(S1)|, |V(S5)| = 1;
//   - graph density |E|/|V| ≈ 3.5, matching Table 2's D1–D5.
package lubm

import (
	"fmt"
	"math/rand"

	"lscr/internal/graph"
	"lscr/internal/rdf"
)

// Property and class names (the ub: vocabulary used by Table 3).
const (
	ClassUniversity           = "ub:University"
	ClassDepartment           = "ub:Department"
	ClassFullProfessor        = "ub:FullProfessor"
	ClassAssociateProfessor   = "ub:AssociateProfessor"
	ClassAssistantProfessor   = "ub:AssistantProfessor"
	ClassLecturer             = "ub:Lecturer"
	ClassUndergraduateStudent = "ub:UndergraduateStudent"
	ClassGraduateStudent      = "ub:GraduateStudent"
	ClassCourse               = "ub:Course"
	ClassGraduateCourse       = "ub:GraduateCourse"
	ClassResearchGroup        = "ub:ResearchGroup"
	ClassPublication          = "ub:Publication"

	PropWorksFor          = "ub:worksFor"
	PropMemberOf          = "ub:memberOf"
	PropSubOrganizationOf = "ub:subOrganizationOf"
	PropTakesCourse       = "ub:takesCourse"
	PropTeacherOf         = "ub:teacherOf"
	PropAdvisor           = "ub:advisor"
	PropPublicationAuthor = "ub:publicationAuthor"
	PropResearchInterest  = "ub:researchInterest"
	PropName              = "ub:name"
	PropEmailAddress      = "ub:emailAddress"
	PropUndergradDegree   = "ub:undergraduateDegreeFrom"
	PropMastersDegree     = "ub:mastersDegreeFrom"
	PropDoctoralDegree    = "ub:doctoralDegreeFrom"
	PropHeadOf            = "ub:headOf"
	PropTeachingAssistant = "ub:teachingAssistantOf"

	// Materialised inverse organisational properties. The original UBA
	// emits only person->organisation edges, leaving organisations as
	// sinks; RDF stores (and the paper's SPARQL substrate [20]) reason
	// over inverse closures, and the paper's passed-vertex counts
	// (~10^6 on a 3.7M-vertex KG) are only possible when organisations
	// fan back out. See DESIGN.md §5.
	PropHasMember          = "ub:hasMember"
	PropHasSubOrganization = "ub:hasSubOrganization"
)

// Config parametrises the generator. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Universities scales the dataset; every university gets
	// DeptsPerUniversity departments.
	Universities int
	Seed         int64

	// Per-department cardinalities. The defaults reproduce the §6.1
	// selectivity ratios; tests assert them.
	DeptsPerUniversity       int
	FullProfessors           int
	AssocProfessors          int
	AssistProfessors         int
	Lecturers                int
	UndergradsPerDept        int
	GradsPerDept             int
	ResearchGroups           int
	PublicationsPerProfessor int

	// ResearchInterests is the number of distinct 'ResearchN' topics.
	ResearchInterests int
}

// DefaultConfig returns the tuned configuration for n universities.
func DefaultConfig(n int) Config {
	return Config{
		Universities:             n,
		Seed:                     1,
		DeptsPerUniversity:       20,
		FullProfessors:           7,
		AssocProfessors:          14,
		AssistProfessors:         5,
		Lecturers:                3,
		UndergradsPerDept:        104,
		GradsPerDept:             30,
		ResearchGroups:           10,
		PublicationsPerProfessor: 3,
		ResearchInterests:        30,
	}
}

// edgesPerUniversity is the measured edge yield of one DefaultConfig
// university (≈26457; ConfigForEdges rounds it down so the estimate
// errs toward generating more edges than asked for, never fewer).
const edgesPerUniversity = 26000

// ConfigForEdges returns a DefaultConfig scaled so the generated graph
// has at least edges edges — the sizing knob of the scale benchmark
// tier and kggen's -edges flag. The university count is the unit of
// granularity, so the result overshoots by up to one university's worth.
func ConfigForEdges(edges int) Config {
	n := (edges + edgesPerUniversity - 1) / edgesPerUniversity
	if n < 1 {
		n = 1
	}
	return DefaultConfig(n)
}

// Generate builds the knowledge graph.
func Generate(cfg Config) *graph.Graph {
	if cfg.Universities < 1 {
		cfg.Universities = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder()
	g := &gen{cfg: cfg, rng: rng, b: b}
	g.ontology()
	for u := 0; u < cfg.Universities; u++ {
		g.university(u)
	}
	return b.Build()
}

type gen struct {
	cfg Config
	rng *rand.Rand
	b   *graph.Builder
}

// triple adds an RDF triple through the same path the loader uses, so the
// schema store and the edge set stay consistent with file-loaded KGs.
func (g *gen) triple(s, p, o string) {
	rdf.AddTriple(g.b, rdf.Triple{Subject: s, Predicate: p, Object: o})
}

// ontology emits the class hierarchy and property domains — the LS part
// of the KG, which INS's landmark selection consumes.
func (g *gen) ontology() {
	classes := []string{
		ClassUniversity, ClassDepartment, ClassFullProfessor,
		ClassAssociateProfessor, ClassAssistantProfessor, ClassLecturer,
		ClassUndergraduateStudent, ClassGraduateStudent, ClassCourse,
		ClassGraduateCourse, ClassResearchGroup, ClassPublication,
	}
	for _, c := range classes {
		g.triple(c, rdf.TypePredicate, rdf.ClassTerm)
	}
	for _, c := range []string{ClassFullProfessor, ClassAssociateProfessor, ClassAssistantProfessor} {
		g.triple(c, rdf.SubClassOfPredicate, "ub:Professor")
	}
	g.triple(ClassGraduateCourse, rdf.SubClassOfPredicate, ClassCourse)
	g.triple(PropWorksFor, rdf.DomainPredicate, "ub:Professor")
	g.triple(PropWorksFor, rdf.RangePredicate, ClassDepartment)
	g.triple(PropTakesCourse, rdf.RangePredicate, ClassCourse)
	g.triple(PropTeacherOf, rdf.RangePredicate, ClassCourse)
}

func (g *gen) university(u int) {
	univ := fmt.Sprintf("University%d", u)
	g.triple(univ, rdf.TypePredicate, ClassUniversity)
	for d := 0; d < g.cfg.DeptsPerUniversity; d++ {
		g.department(univ, u, d)
	}
}

func (g *gen) department(univ string, u, d int) {
	cfg := g.cfg
	dept := fmt.Sprintf("Department%d.%s", d, univ)
	g.triple(dept, rdf.TypePredicate, ClassDepartment)
	g.triple(dept, PropSubOrganizationOf, univ)
	g.triple(univ, PropHasSubOrganization, dept)

	var faculty []string    // all teaching staff
	var professors []string // interest-bearing staff
	addFaculty := func(class, base string, n int) {
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("%s%d.%s", base, i, dept)
			g.triple(name, rdf.TypePredicate, class)
			g.triple(name, PropWorksFor, dept)
			g.triple(dept, PropHasMember, name)
			g.triple(name, PropName, literal(fmt.Sprintf("%s%d", base, i)))
			g.triple(name, PropEmailAddress,
				literal(fmt.Sprintf("%s%d@Department%d.%s.edu", base, i, d, univ)))
			g.triple(name, PropUndergradDegree, g.someUniversity(univ))
			g.triple(name, PropMastersDegree, g.someUniversity(univ))
			g.triple(name, PropDoctoralDegree, g.someUniversity(univ))
			faculty = append(faculty, name)
			if class != ClassLecturer {
				g.triple(name, PropResearchInterest,
					literal(fmt.Sprintf("Research%d", g.rng.Intn(cfg.ResearchInterests))))
				professors = append(professors, name)
			}
		}
	}
	addFaculty(ClassFullProfessor, "FullProfessor", cfg.FullProfessors)
	addFaculty(ClassAssociateProfessor, "AssociateProfessor", cfg.AssocProfessors)
	addFaculty(ClassAssistantProfessor, "AssistantProfessor", cfg.AssistProfessors)
	addFaculty(ClassLecturer, "Lecturer", cfg.Lecturers)

	// The first full professor heads the department.
	if len(faculty) > 0 {
		g.triple(faculty[0], PropHeadOf, dept)
	}

	// Courses: each faculty member teaches one or two.
	var courses, gradCourses []string
	for i, f := range faculty {
		n := 1 + g.rng.Intn(2)
		for j := 0; j < n; j++ {
			var course, class string
			if g.rng.Intn(3) == 0 {
				course = fmt.Sprintf("GraduateCourse%d_%d.%s", i, j, dept)
				class = ClassGraduateCourse
				gradCourses = append(gradCourses, course)
			} else {
				course = fmt.Sprintf("Course%d_%d.%s", i, j, dept)
				class = ClassCourse
				courses = append(courses, course)
			}
			g.triple(course, rdf.TypePredicate, class)
			g.triple(f, PropTeacherOf, course)
		}
	}
	if len(courses) == 0 {
		// Degenerate tiny configs: guarantee at least one plain course.
		course := "Course0_0." + dept
		g.triple(course, rdf.TypePredicate, ClassCourse)
		g.triple(faculty[0], PropTeacherOf, course)
		courses = append(courses, course)
	}

	// Research groups.
	for i := 0; i < cfg.ResearchGroups; i++ {
		grp := fmt.Sprintf("ResearchGroup%d.%s", i, dept)
		g.triple(grp, rdf.TypePredicate, ClassResearchGroup)
		g.triple(grp, PropSubOrganizationOf, dept)
	}

	// Undergraduates: S3 requires type UndergraduateStudent + takesCourse
	// a plain ub:Course.
	for i := 0; i < cfg.UndergradsPerDept; i++ {
		s := fmt.Sprintf("UndergraduateStudent%d.%s", i, dept)
		g.triple(s, rdf.TypePredicate, ClassUndergraduateStudent)
		g.triple(s, PropMemberOf, dept)
		g.triple(dept, PropHasMember, s)
		g.triple(s, PropName, literal(fmt.Sprintf("UndergraduateStudent%d", i)))
		g.triple(s, PropTakesCourse, courses[g.rng.Intn(len(courses))])
		if g.rng.Intn(2) == 0 {
			g.triple(s, PropTakesCourse, g.pickCourse(courses, gradCourses))
		}
	}

	// Graduate students: S4 requires ub:name 'GraduateStudent4',
	// takesCourse, advisor (teaching, employed), memberOf a department
	// that is a sub-organization.
	for i := 0; i < cfg.GradsPerDept; i++ {
		s := fmt.Sprintf("GraduateStudent%d.%s", i, dept)
		g.triple(s, rdf.TypePredicate, ClassGraduateStudent)
		g.triple(s, PropMemberOf, dept)
		g.triple(dept, PropHasMember, s)
		g.triple(s, PropName, literal(fmt.Sprintf("GraduateStudent%d", i)))
		g.triple(s, PropAdvisor, professors[g.rng.Intn(len(professors))])
		g.triple(s, PropUndergradDegree, g.someUniversity(univ))
		nc := 1 + g.rng.Intn(2)
		for j := 0; j < nc; j++ {
			g.triple(s, PropTakesCourse, g.pickCourse(courses, gradCourses))
		}
		if i == 0 && len(courses) > 0 {
			g.triple(s, PropTeachingAssistant, courses[g.rng.Intn(len(courses))])
		}
	}

	// Publications by professors.
	for i, p := range professors {
		for j := 0; j < cfg.PublicationsPerProfessor; j++ {
			pub := fmt.Sprintf("Publication%d_%d.%s", i, j, dept)
			g.triple(pub, rdf.TypePredicate, ClassPublication)
			g.triple(pub, PropPublicationAuthor, p)
		}
	}
}

// someUniversity returns a university name, usually the local one but
// sometimes another, creating cross-university edges.
func (g *gen) someUniversity(local string) string {
	if g.cfg.Universities > 1 && g.rng.Intn(4) == 0 {
		return fmt.Sprintf("University%d", g.rng.Intn(g.cfg.Universities))
	}
	return local
}

func (g *gen) pickCourse(courses, gradCourses []string) string {
	if len(gradCourses) > 0 && g.rng.Intn(4) == 0 {
		return gradCourses[g.rng.Intn(len(gradCourses))]
	}
	return courses[g.rng.Intn(len(courses))]
}

// literal names the vertex a literal value interns to. The substrate
// stores literals as ordinary vertices keyed by their content, which is
// exactly how the sparql package resolves quoted terms like 'Research12',
// so the identity mapping is the correct one.
func literal(s string) string { return s }
