package lubm

// NamedConstraint pairs a Table 3 constraint identifier with its SPARQL
// text.
type NamedConstraint struct {
	Name   string
	SPARQL string
	// Blurb summarises the paper's characterisation of the constraint.
	Blurb string
}

// Constraints returns S1–S5 exactly as Table 3 states them (modulo ASCII
// angle brackets).
func Constraints() []NamedConstraint {
	return []NamedConstraint{
		{
			Name:   "S1",
			SPARQL: `SELECT ?x WHERE { ?x <ub:researchInterest> 'Research12'.}`,
			Blurb:  "baseline: |V(S1,D)|/|V| ≈ 1‰",
		},
		{
			Name: "S2",
			SPARQL: `SELECT ?x WHERE { ?x <ub:researchInterest> 'Research12'. ` +
				`?x <rdf:type> <ub:AssociateProfessor>.}`,
			Blurb: "normal selectivity: |V(S2,D)|/|V(S1,D)| ≈ 50%",
		},
		{
			Name: "S3",
			SPARQL: `SELECT ?x WHERE {?x <rdf:type> <ub:UndergraduateStudent>. ` +
				`?x <ub:takesCourse> ?y. ?y <rdf:type> <ub:Course>.}`,
			Blurb: "large result: |V(S3,D)|/|V(S1,D)| ≈ 120",
		},
		{
			Name: "S4",
			SPARQL: `SELECT ?x WHERE {?x <ub:name> 'GraduateStudent4'. ` +
				`?x <ub:takesCourse> ?y1. ?x <ub:advisor> ?y2. ?x <ub:memberOf> ?y3. ` +
				`?z1 <ub:takesCourse> ?y1. ?y2 <ub:teacherOf> ?z2. ` +
				`?y2 <ub:worksFor> ?z3. ?y3 <ub:subOrganizationOf> ?z4.}`,
			Blurb: "high selectivity: |V(S4,D)|/|V(S1,D)| ≈ 1",
		},
		{
			Name: "S5",
			SPARQL: `SELECT ?x WHERE {?x <ub:emailAddress> 'FullProfessor0@Department0.University0.edu'. ` +
				`?x <ub:undergraduateDegreeFrom> ?y1. ?x <ub:mastersDegreeFrom> ?y2. ` +
				`?x <ub:doctoralDegreeFrom> ?y3.}`,
			Blurb: "singleton: |V(S5,D)| = 1",
		},
	}
}

// Constraint returns the Table 3 constraint with the given name, or false.
func Constraint(name string) (NamedConstraint, bool) {
	for _, c := range Constraints() {
		if c.Name == name {
			return c, true
		}
	}
	return NamedConstraint{}, false
}
