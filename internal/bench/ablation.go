package bench

import (
	"fmt"
	"io"
	"time"

	"lscr/internal/lscr"
	"lscr/internal/workload"
)

// RunAblationRho compares the two readings of the ρ evaluation function
// (DESIGN.md §3): the paper's literal ρ = D(s.AF, t.AF) with smaller-
// is-better, versus this repository's negated reading where strongly
// connected regions count as near. Both run INS on the same S1 workload.
func RunAblationRho(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	spec := DatasetSpec{Name: "D2", Universities: 2 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return err
	}
	trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
		Count: cfg.QueriesPerGroup, Seed: cfg.Seed + 99,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation — ρ reading (dataset %s, |V|=%d, constraint S1)\n\n", spec.Name, g.NumVertices())
	tw := newTab(w)
	fmt.Fprintf(tw, "rho\ttrue avg(ms)\tfalse avg(ms)\ttrue passed\tfalse passed\n")
	for _, literal := range []bool{false, true} {
		idx := lscr.NewLocalIndex(g, lscr.IndexParams{Seed: cfg.Seed, LiteralRho: literal})
		tr, err := runGroup(g, idx, vs, trueQ, "INS")
		if err != nil {
			return err
		}
		fa, err := runGroup(g, idx, vs, falseQ, "INS")
		if err != nil {
			return err
		}
		name := "negated-D (default)"
		if literal {
			name = "literal-D (paper text)"
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.0f\t%.0f\n", name,
			float64(tr.AvgTime)/float64(time.Millisecond),
			float64(fa.AvgTime)/float64(time.Millisecond),
			tr.AvgPassed, fa.AvgPassed)
	}
	return tw.Flush()
}

// RunAblationLandmarks sweeps the landmark count k around the paper's
// default k̂ = log2(|V|)·√|V|, reporting index cost and INS query time —
// the size/speed trade-off §5.1.2's choice of k embodies.
func RunAblationLandmarks(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	spec := DatasetSpec{Name: "D2", Universities: 2 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return err
	}
	trueQ, _, err := workload.Generate(g, cons, vs, workload.Config{
		Count: cfg.QueriesPerGroup, Seed: cfg.Seed + 77,
	})
	if err != nil {
		return err
	}
	kHat := lscr.DefaultK(g.NumVertices())
	fmt.Fprintf(w, "Ablation — landmark count (dataset %s, |V|=%d, k̂=%d)\n\n", spec.Name, g.NumVertices(), kHat)
	tw := newTab(w)
	fmt.Fprintf(tw, "k\tindex time(ms)\tindex size(KB)\tINS true avg(ms)\ttrue passed\n")
	for _, k := range []int{kHat / 4, kHat / 2, kHat, kHat * 2} {
		if k < 1 {
			k = 1
		}
		start := time.Now()
		idx := lscr.NewLocalIndex(g, lscr.IndexParams{K: k, Seed: cfg.Seed})
		it := time.Since(start)
		tr, err := runGroup(g, idx, vs, trueQ, "INS")
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%d\t%.3f\t%.0f\n", k,
			float64(it)/float64(time.Millisecond), idx.SizeBytes()/1024,
			float64(tr.AvgTime)/float64(time.Millisecond), tr.AvgPassed)
	}
	return tw.Flush()
}

// RunAblationQueue runs the paper's full algorithm progression on one
// workload: the §3 naive two-procedure baseline (Theorem 3.1's
// O(|V|·(|V|+|E|))), UIS with recall, UIS* with the SPARQL-provided
// V(S,G), and INS with the local index and priority queue — isolating
// what each design step buys (the delta §5 motivates with Figure 8).
func RunAblationQueue(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	spec := DatasetSpec{Name: "D2", Universities: 2 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return err
	}
	trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
		Count: cfg.QueriesPerGroup, Seed: cfg.Seed + 55,
	})
	if err != nil {
		return err
	}
	idx := buildIndex(g, spec, cfg.Seed)
	fmt.Fprintf(w, "Ablation — search policy (dataset %s, |V|=%d, constraint S1)\n\n", spec.Name, g.NumVertices())
	tw := newTab(w)
	fmt.Fprintf(tw, "algorithm\ttrue avg(ms)\tfalse avg(ms)\ttrue passed\tfalse passed\n")
	for _, algo := range []string{"Naive", "UIS", "UIS*", "INS"} {
		tr, err := runGroup(g, idx, vs, trueQ, algo)
		if err != nil {
			return err
		}
		fa, err := runGroup(g, idx, vs, falseQ, algo)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.0f\t%.0f\n", algo,
			float64(tr.AvgTime)/float64(time.Millisecond),
			float64(fa.AvgTime)/float64(time.Millisecond),
			tr.AvgPassed, fa.AvgPassed)
	}
	return tw.Flush()
}
