package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	pub "lscr"
	"lscr/internal/graph"
	"lscr/internal/lubm"
)

// The mutate harness measures the live-update tentpole: Engine.Apply
// commits mutation batches into the delta overlay while readers keep
// querying immutable epochs, and the background compactor periodically
// folds the overlay into a fresh CSR + index. The harness reports how
// much read throughput survives a concurrent writer (reads are never
// blocked — the retention gap is pure cache/CPU contention) and the
// write throughput itself, then proves the serving answers: after a
// final compaction the live engine must answer the whole workload
// bit-identically to an engine rebuilt from scratch on the final edge
// set (snapshot round-trip → fresh Builder → fresh index). cmd/lscrbench
// exposes it as -exp mutate (text) and -exp mutate-json (the
// BENCH_mutate.json trajectory format), and the CI smoke exits nonzero
// unless the answers are identical.

// MutateReport is the machine-readable baseline (BENCH_mutate.json).
type MutateReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Dataset    string `json:"dataset"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`

	// Queries is the read-workload size per measured pass; Readers the
	// concurrent reader goroutines during the mixed phase.
	Queries int `json:"queries"`
	Readers int `json:"readers"`

	// Batches × OpsPerBatch edge mutations were applied (≈2/3 inserts,
	// ≈1/3 deletes, some through brand-new vertices); CompactAfter is
	// the overlay threshold the background compactor ran under.
	Batches      int `json:"batches"`
	OpsPerBatch  int `json:"ops_per_batch"`
	CompactAfter int `json:"compact_after"`

	// ReadOnlyQPS is the baseline read throughput with no writer;
	// MixedReadQPS the read throughput while the writer was committing;
	// ReadRetention their ratio (1.0 = mutations are free for readers).
	ReadOnlyQPS   float64 `json:"read_only_qps"`
	MixedReadQPS  float64 `json:"mixed_read_qps"`
	ReadRetention float64 `json:"read_retention"`

	// WriteOpsPerSec is the committed mutation throughput during the
	// mixed phase; Compactions counts background folds that landed.
	WriteOpsPerSec float64 `json:"write_ops_per_sec"`
	Compactions    int64   `json:"compactions"`

	// FinalVertices/FinalEdges describe the mutated graph.
	FinalVertices int `json:"final_vertices"`
	FinalEdges    int `json:"final_edges"`

	// Identical confirms the mutated engine (after a final compaction)
	// answered the whole workload bit-identically — Reachable, passed
	// vertices, |V(S,G)| — to an engine rebuilt from scratch on the
	// final edge set.
	Identical bool `json:"identical"`
}

// mutateScript precomputes the batches: inserts between random existing
// vertices (sometimes via fresh ones) and deletes drawn from a pool of
// known-surviving instances, so every batch validates.
func mutateScript(g *graph.Graph, seed int64, batches, opsPerBatch int) [][]pub.Mutation {
	r := rng(seed, "mutate")
	// The deletable pool: every base instance by name, appended with the
	// script's own inserts; a delete removes one pool entry.
	type edge struct{ s, l, t string }
	var pool []edge
	g.Triples(func(t graph.Triple) bool {
		pool = append(pool, edge{g.VertexName(t.Subject), g.LabelName(t.Label), g.VertexName(t.Object)})
		return true
	})
	script := make([][]pub.Mutation, batches)
	for bi := range script {
		batch := make([]pub.Mutation, 0, opsPerBatch)
		for oi := 0; oi < opsPerBatch; oi++ {
			if len(pool) > 0 && oi%3 == 2 {
				i := r.Intn(len(pool))
				e := pool[i]
				pool[i] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
				batch = append(batch, pub.Mutation{Op: pub.OpDeleteEdge, Subject: e.s, Label: e.l, Object: e.t})
				continue
			}
			s := g.VertexName(graph.VertexID(r.Intn(g.NumVertices())))
			if oi%5 == 4 {
				s = fmt.Sprintf("live_%d_%d", bi, oi)
			}
			l := g.LabelName(graph.Label(r.Intn(g.NumLabels())))
			t := g.VertexName(graph.VertexID(r.Intn(g.NumVertices())))
			batch = append(batch, pub.Mutation{Op: pub.OpAddEdge, Subject: s, Label: l, Object: t})
			pool = append(pool, edge{s, l, t})
		}
		script[bi] = batch
	}
	return script
}

// MeasureMutate runs the mixed read/write workload and the
// mutated-vs-rebuilt identity check, returning the report.
func MeasureMutate(cfg Config, concurrency int) (*MutateReport, error) {
	cfg = cfg.withDefaults()
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	spec := DatasetSpec{Name: "D1", Universities: 1 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	ctx := context.Background()

	rep := &MutateReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Dataset:      spec.Name,
		Vertices:     g.NumVertices(),
		Edges:        g.NumEdges(),
		Readers:      concurrency,
		Batches:      cfg.QueriesPerGroup * 5,
		OpsPerBatch:  16,
		CompactAfter: 256,
	}

	// The read workload rotates the paper's constraints over random
	// pairs and all four algorithms.
	consts := lubm.Constraints()
	r := rng(cfg.Seed, "mutate-queries")
	rep.Queries = cfg.QueriesPerGroup * 20
	algos := []pub.Algorithm{pub.INS, pub.UIS, pub.UISStar, pub.Conjunctive}
	reqs := make([]pub.Request, rep.Queries)
	for i := range reqs {
		labels := make([]string, 2)
		for j := range labels {
			labels[j] = g.LabelName(graph.Label(r.Intn(g.NumLabels())))
		}
		req := pub.Request{
			Source:    g.VertexName(graph.VertexID(r.Intn(g.NumVertices()))),
			Target:    g.VertexName(graph.VertexID(r.Intn(g.NumVertices()))),
			Labels:    labels,
			Algorithm: algos[i%len(algos)],
		}
		if req.Algorithm == pub.Conjunctive {
			req.Constraints = []string{consts[i%len(consts)].SPARQL, consts[(i+1)%len(consts)].SPARQL}
		} else {
			req.Constraint = consts[i%len(consts)].SPARQL
		}
		reqs[i] = req
	}

	eng := pub.NewEngine(pub.FromGraph(g), pub.Options{
		IndexSeed:    cfg.Seed,
		CompactAfter: rep.CompactAfter,
	})
	script := mutateScript(g, cfg.Seed, rep.Batches, rep.OpsPerBatch)

	// Phase 1: read-only baseline.
	start := time.Now()
	for _, o := range eng.QueryBatch(ctx, reqs, pub.BatchOptions{Concurrency: concurrency}) {
		if o.Err != nil {
			return nil, fmt.Errorf("bench: baseline query: %w", o.Err)
		}
	}
	rep.ReadOnlyQPS = float64(len(reqs)) / time.Since(start).Seconds()

	// Phase 2: readers loop over the workload while the writer commits
	// every batch; reads during the write window count toward MixedReadQPS.
	var (
		reads     atomic.Int64
		readErr   atomic.Value
		stop      = make(chan struct{})
		wgReaders sync.WaitGroup
	)
	for w := 0; w < concurrency; w++ {
		wgReaders.Add(1)
		go func(w int) {
			defer wgReaders.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Query(ctx, reqs[i%len(reqs)]); err != nil {
					readErr.Store(err)
					return
				}
				reads.Add(1)
			}
		}(w)
	}
	start = time.Now()
	for _, batch := range script {
		if _, err := eng.Apply(ctx, batch); err != nil {
			close(stop)
			wgReaders.Wait()
			return nil, fmt.Errorf("bench: apply: %w", err)
		}
	}
	writeSecs := time.Since(start).Seconds()
	close(stop)
	wgReaders.Wait()
	if err, _ := readErr.Load().(error); err != nil {
		return nil, fmt.Errorf("bench: read during writes: %w", err)
	}
	rep.MixedReadQPS = float64(reads.Load()) / writeSecs
	rep.ReadRetention = rep.MixedReadQPS / rep.ReadOnlyQPS
	rep.WriteOpsPerSec = float64(rep.Batches*rep.OpsPerBatch) / writeSecs

	// Phase 3: fold everything, then prove the serving answers against a
	// from-scratch rebuild on the final edge set. The snapshot
	// round-trip re-interns every name and edge through a fresh Builder,
	// so the rebuilt engine shares no state with the live one.
	if _, err := eng.Compact(ctx); err != nil {
		return nil, fmt.Errorf("bench: final compaction: %w", err)
	}
	rep.Compactions = eng.Epoch().Compactions
	kg := eng.KG()
	rep.FinalVertices, rep.FinalEdges = kg.NumVertices(), kg.NumEdges()

	var snap bytes.Buffer
	if err := kg.WriteSnapshot(&snap); err != nil {
		return nil, err
	}
	rebuiltKG, err := pub.LoadSnapshot(&snap)
	if err != nil {
		return nil, err
	}
	rebuilt := pub.NewEngine(rebuiltKG, pub.Options{IndexSeed: cfg.Seed})

	rep.Identical = true
	live := eng.QueryBatch(ctx, reqs, pub.BatchOptions{Concurrency: concurrency})
	ref := rebuilt.QueryBatch(ctx, reqs, pub.BatchOptions{Concurrency: concurrency})
	for i := range reqs {
		if live[i].Err != nil {
			return nil, fmt.Errorf("bench: live query %d: %w", i, live[i].Err)
		}
		if ref[i].Err != nil {
			return nil, fmt.Errorf("bench: rebuilt query %d: %w", i, ref[i].Err)
		}
		a, b := live[i].Response, ref[i].Response
		if a.Reachable != b.Reachable || a.Stats != b.Stats || a.SatisfyingVertices != b.SatisfyingVertices {
			rep.Identical = false
		}
	}
	return rep, nil
}

// RunMutate prints the mixed-workload report (cmd/lscrbench -exp mutate)
// and fails unless mutated-vs-rebuilt answers are identical.
func RunMutate(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureMutate(cfg, concurrency)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "live mutations on %s (|V|=%d |E|=%d): %d batches x %d ops, compact-after %d, %d readers\n",
		rep.Dataset, rep.Vertices, rep.Edges, rep.Batches, rep.OpsPerBatch, rep.CompactAfter, rep.Readers)
	fmt.Fprintf(w, "read-only              %8.0f qps\n", rep.ReadOnlyQPS)
	fmt.Fprintf(w, "reads during writes    %8.0f qps  (%.0f%% retained)\n", rep.MixedReadQPS, rep.ReadRetention*100)
	fmt.Fprintf(w, "write throughput       %8.0f ops/s, %d background compactions\n", rep.WriteOpsPerSec, rep.Compactions)
	fmt.Fprintf(w, "final graph            |V|=%d |E|=%d\n", rep.FinalVertices, rep.FinalEdges)
	fmt.Fprintf(w, "mutated-vs-rebuilt answers identical: %v\n", rep.Identical)
	if !rep.Identical {
		return fmt.Errorf("bench: mutated and rebuilt answers diverged")
	}
	return nil
}

// RunMutateJSON writes the report as indented JSON — the format
// committed to BENCH_mutate.json so later PRs can track the trajectory.
func RunMutateJSON(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureMutate(cfg, concurrency)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Identical {
		return fmt.Errorf("bench: mutated and rebuilt answers diverged")
	}
	return nil
}
