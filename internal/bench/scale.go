package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	pub "lscr"
	"lscr/internal/graph"
	"lscr/internal/lscr"
	"lscr/internal/lubm"
	"lscr/internal/qcache"
	"lscr/internal/workload"
	"lscr/internal/yagogen"
)

// The scale harness is the tier above the laptop-scale figures: it
// generates multi-million-edge KGs (the paper's Table 2 territory rather
// than the 100×-shrunk defaults), runs the index-build, query-throughput,
// cache and mutate experiments at GOMAXPROCS=NumCPU with contended
// readers, and additionally measures the big-graph fixes this tier
// motivated (qcache shard padding, pooled witness scratch, engine
// scratch prewarming). cmd/lscrbench exposes it as -exp scale (text) and
// -exp scale-json (the BENCH_scale.json baseline format); like the other
// parallel experiment it refuses to run at GOMAXPROCS=1 and annotates
// the report when GOMAXPROCS exceeds the physical CPU count.

// DefaultScaleEdges is the edge target of the committed baseline.
const DefaultScaleEdges = 1_200_000

// ScaleReport is the machine-readable baseline (BENCH_scale.json).
type ScaleReport struct {
	GOMAXPROCS         int    `json:"gomaxprocs"`
	NumCPU             int    `json:"numcpu"`
	EnvironmentWarning string `json:"environment_warning,omitempty"`
	EdgesTarget        int    `json:"edges_target"`

	// LUBM is the primary dataset (the paper's D-series shape at scale):
	// generation, index-build sweep and contended INS throughput sweep.
	LUBM ScaleDataset `json:"lubm"`
	// YAGO is the secondary dataset (§6.2's scale-free shape): a sized
	// random constraint and a contended throughput sweep against the
	// serial run's answers.
	YAGO ScaleDataset `json:"yago"`

	// Cache and Mutate rerun the existing cache-speedup and live-mutation
	// experiments on the scale LUBM graph (same report formats as
	// BENCH_cache.json / BENCH_mutate.json, so benchdiff compares their
	// qps leaves too).
	Cache  *CacheReport  `json:"cache"`
	Mutate *MutateReport `json:"mutate"`

	// Fixes records the measured state of the big-graph fixes that ride
	// with this tier.
	Fixes ScaleFixes `json:"fixes"`

	// Identical is the conjunction of every phase's identity check: all
	// fan-outs matched their serial reference and the serial reference
	// matched ground truth where ground truth exists.
	Identical bool `json:"identical"`
}

// ScaleDataset is one dataset's section of the report.
type ScaleDataset struct {
	Dataset   string `json:"dataset"`
	Vertices  int    `json:"vertices"`
	Edges     int    `json:"edges"`
	Landmarks int    `json:"landmarks"`

	GenSeconds float64 `json:"gen_seconds"`
	// WorkloadSeconds is the cost of building the query workload
	// (ground-truth generation for LUBM, constraint sizing for YAGO).
	WorkloadSeconds float64 `json:"workload_seconds"`
	Queries         int     `json:"queries"`

	// Index is the index-construction worker sweep (LUBM only).
	Index []IndexPoint `json:"index,omitempty"`
	// Query is the contended INS throughput sweep over one shared index.
	Query []ThroughputPoint `json:"query"`

	Identical bool `json:"identical"`
}

// ScaleFixes holds the measured deltas of the fixes the scale tier
// exposed. The "prev" numbers are arithmetic, not remeasured: the code
// they describe no longer exists.
type ScaleFixes struct {
	// Contended qcache Get throughput at concurrency 1 and GOMAXPROCS on
	// the padded-shard cache. On real multi-core hardware the cmax point
	// scales near-linearly now that adjacent shards cannot share a cache
	// line; internal/qcache's contention benchmark has the before/after
	// pair.
	QCacheGetQPSC1   float64 `json:"qcache_get_qps_c1"`
	QCacheGetQPSCMax float64 `json:"qcache_get_qps_cmax"`

	// Witness reconstruction steady-state cost on the scale graph. Before
	// the pooled scratch each FindWitness allocated two |V|-sized []bool
	// visited arrays (PrevVisitedBytesPerOp = 2|V|) plus parent maps;
	// now only the returned hop slices allocate.
	WitnessAllocsPerOp    float64 `json:"witness_allocs_per_op"`
	WitnessBytesPerOp     float64 `json:"witness_bytes_per_op"`
	PrevVisitedBytesPerOp int     `json:"prev_visited_bytes_per_op"`

	// FirstQuerySeconds is the first query on a freshly opened engine,
	// whose constructor prewarms the pooled per-query scratch for graphs
	// past the prewarm threshold — without it the first query on each
	// worker paid the whole |V|-sized allocation cliff.
	FirstQuerySeconds float64 `json:"first_query_seconds"`
}

// MeasureScale runs the scale tier at the given edge target (0 means
// DefaultScaleEdges) and returns the report.
func MeasureScale(cfg Config, edges int) (*ScaleReport, error) {
	if err := requireParallelEnv("scale"); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if edges <= 0 {
		edges = DefaultScaleEdges
	}

	rep := &ScaleReport{
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		EnvironmentWarning: environmentWarning(),
		EdgesTarget:        edges,
		Identical:          true,
	}

	// The LUBM scale graph is spec D1 at ConfigForEdges' university
	// count, so the cache and mutate phases below (which key datasets by
	// university count) reuse the exact same cached graph.
	universities := lubm.ConfigForEdges(edges).Universities
	cfg.Scale = universities

	if err := measureScaleLUBM(cfg, rep); err != nil {
		return nil, err
	}
	if err := measureScaleYAGO(cfg, edges, rep); err != nil {
		return nil, err
	}

	// Cache and mutate on the scale graph, with query counts scaled down
	// from the laptop defaults: their workloads multiply QueriesPerGroup
	// by 40 and 20 respectively, and each cold cache query pays a full
	// constraint compile on the multi-million-edge graph.
	cacheCfg := cfg
	cacheCfg.QueriesPerGroup = 1
	cache, err := MeasureCacheSpeedup(cacheCfg, rep.GOMAXPROCS)
	if err != nil {
		return nil, err
	}
	rep.Cache = cache
	rep.Identical = rep.Identical && cache.Identical

	mutateCfg := cfg
	mutateCfg.QueriesPerGroup = 2
	mutate, err := MeasureMutate(mutateCfg, rep.GOMAXPROCS)
	if err != nil {
		return nil, err
	}
	rep.Mutate = mutate
	rep.Identical = rep.Identical && mutate.Identical

	if err := measureScaleFixes(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// measureScaleLUBM fills the primary-dataset section: generation, the
// index-build worker sweep (with build-identity checks) and the
// contended INS throughput sweep (with answers checked against both the
// serial run and the workload's ground truth).
func measureScaleLUBM(cfg Config, rep *ScaleReport) error {
	spec := DatasetSpec{Name: "D1", Universities: cfg.Scale}
	start := time.Now()
	g := buildDataset(spec, cfg.Seed)
	sec := &rep.LUBM
	sec.Dataset = fmt.Sprintf("LUBM-%d", cfg.Scale)
	sec.GenSeconds = time.Since(start).Seconds()
	sec.Vertices, sec.Edges = g.NumVertices(), g.NumEdges()
	sec.Identical = true

	var ref *lscr.LocalIndex
	var refSecs float64
	for _, w := range workerLevels() {
		start := time.Now()
		idx := lscr.NewLocalIndex(g, lscr.IndexParams{Seed: cfg.Seed, Workers: w})
		secs := time.Since(start).Seconds()
		if ref == nil {
			ref, refSecs = idx, secs
		} else if idx.Entries() != ref.Entries() || idx.SizeBytes() != ref.SizeBytes() {
			sec.Identical = false
		}
		sec.Index = append(sec.Index, IndexPoint{Workers: w, Seconds: secs, Speedup: refSecs / secs})
		sec.Landmarks = len(idx.Landmarks())
	}

	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return err
	}
	start = time.Now()
	trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
		Count: cfg.QueriesPerGroup, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	sec.WorkloadSeconds = time.Since(start).Seconds()
	qs := append(append([]workload.Query{}, trueQ...), falseQ...)
	sec.Queries = len(qs)
	if len(qs) == 0 {
		return fmt.Errorf("bench: empty scale workload")
	}

	expected := make([]bool, len(qs))
	for i, q := range qs {
		expected[i] = q.Expected
	}
	run := func(q workload.Query) (bool, error) {
		ok, _, err := lscr.INS(g, ref, q.Query, vs)
		return ok, err
	}
	points, identical, err := contendedSweep(len(qs), func(i int) (bool, error) { return run(qs[i]) }, expected)
	if err != nil {
		return err
	}
	sec.Query = points
	sec.Identical = sec.Identical && identical
	rep.Identical = rep.Identical && sec.Identical
	return nil
}

// measureScaleYAGO fills the secondary-dataset section: a scale-free
// graph sized to the same edge target, a §6.2-style sized random
// constraint, and the contended sweep checked against the serial run
// (there is no precomputed ground truth at this scale; the serial pass
// is the reference).
func measureScaleYAGO(cfg Config, edges int, rep *ScaleReport) error {
	ycfg := yagogen.ConfigForEdges(edges)
	ycfg.Seed = cfg.Seed
	start := time.Now()
	g := yagogen.Generate(ycfg)
	sec := &rep.YAGO
	sec.Dataset = fmt.Sprintf("YAGO-%d", ycfg.Entities)
	sec.GenSeconds = time.Since(start).Seconds()
	sec.Vertices, sec.Edges = g.NumVertices(), g.NumEdges()
	sec.Identical = true

	idx := lscr.NewLocalIndex(g, lscr.IndexParams{Seed: cfg.Seed})
	sec.Landmarks = len(idx.Landmarks())

	// |V(S,G)| magnitude 1000 matches §6.2's mid magnitude; tiny CI
	// graphs get a proportionally smaller window.
	m := 1000
	if lim := g.NumVertices()/100 + 1; lim < m {
		m = lim
	}
	start = time.Now()
	cons, vs, err := workload.RandomConstraintSized(rng(cfg.Seed, "scale-yago"), g, m)
	if err != nil {
		return err
	}
	sec.WorkloadSeconds = time.Since(start).Seconds()

	r := rng(cfg.Seed, "scale-yago-queries")
	qs := make([]lscr.Query, cfg.QueriesPerGroup*2)
	for i := range qs {
		qs[i] = lscr.Query{
			Source:     graph.VertexID(r.Intn(g.NumVertices())),
			Target:     graph.VertexID(r.Intn(g.NumVertices())),
			Labels:     g.LabelUniverse(),
			Constraint: cons,
		}
	}
	sec.Queries = len(qs)

	points, identical, err := contendedSweep(len(qs), func(i int) (bool, error) {
		ok, _, err := lscr.INS(g, idx, qs[i], vs)
		return ok, err
	}, nil)
	if err != nil {
		return err
	}
	sec.Query = points
	sec.Identical = sec.Identical && identical
	rep.Identical = rep.Identical && sec.Identical
	return nil
}

// contendedSweep runs the query set at each worker level of the sweep
// (goroutines pulling from one atomic work queue — contended readers
// over shared engine state), returning the throughput points, whether
// every level reproduced the serial answers, and an error on the first
// query failure. When expected is non-nil the serial answers are also
// checked against it.
func contendedSweep(n int, run func(i int) (bool, error), expected []bool) ([]ThroughputPoint, bool, error) {
	var points []ThroughputPoint
	identical := true
	var refAns []bool
	var refQPS float64
	for _, c := range workerLevels() {
		ans := make([]bool, n)
		var (
			errMu    sync.Mutex
			firstErr error
			next     atomic.Int64
			wg       sync.WaitGroup
		)
		start := time.Now()
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					ok, err := run(i)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					ans[i] = ok
				}
			}()
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		if firstErr != nil {
			return nil, false, firstErr
		}
		qps := float64(n) / secs
		if refAns == nil {
			refAns, refQPS = ans, qps
		} else {
			for i := range ans {
				if ans[i] != refAns[i] {
					identical = false
				}
			}
		}
		points = append(points, ThroughputPoint{Concurrency: c, QPS: qps, Speedup: qps / refQPS})
	}
	if expected != nil {
		for i := range refAns {
			if refAns[i] != expected[i] {
				return nil, false, fmt.Errorf("bench: scale query %d answered %v, ground truth %v",
					i, refAns[i], expected[i])
			}
		}
	}
	return points, identical, nil
}

// measureScaleFixes fills the fixes section with measured numbers on the
// scale LUBM graph.
func measureScaleFixes(cfg Config, rep *ScaleReport) error {
	spec := DatasetSpec{Name: "D1", Universities: cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	fx := &rep.Fixes

	fx.QCacheGetQPSC1 = measureQCacheGets(1)
	fx.QCacheGetQPSCMax = measureQCacheGets(rep.GOMAXPROCS)

	// Witness reconstruction: find a true query with an interior anchor
	// (INS reports the satisfying vertex on true answers) and measure the
	// steady-state allocation of FindWitness via the allocator counters.
	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return err
	}
	trueQ, _, err := workload.Generate(g, cons, vs, workload.Config{Count: 1, Seed: cfg.Seed + 7})
	if err != nil {
		return err
	}
	if len(trueQ) > 0 {
		idx := lscr.NewLocalIndex(g, lscr.IndexParams{Seed: cfg.Seed})
		q := trueQ[0].Query
		_, st, err := lscr.INS(g, idx, q, vs)
		if err != nil {
			return err
		}
		if st.Satisfying != graph.NoVertex {
			witness := func() error {
				if _, ok := lscr.FindWitness(g, q.Source, q.Target, st.Satisfying, q.Labels); !ok {
					return fmt.Errorf("bench: witness vanished")
				}
				return nil
			}
			for i := 0; i < 3; i++ {
				if err := witness(); err != nil {
					return err
				}
			}
			const reps = 100
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			for i := 0; i < reps; i++ {
				if err := witness(); err != nil {
					return err
				}
			}
			runtime.ReadMemStats(&m1)
			fx.WitnessAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / reps
			fx.WitnessBytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / reps
		}
	}
	fx.PrevVisitedBytesPerOp = 2 * g.NumVertices()

	// First query on a freshly opened engine: the constructor prewarms
	// the pooled scratch for graphs this size, so this latency no longer
	// includes the |V|-sized scratch allocations. UIS keeps the engine
	// index-free — the measurement isolates the query path.
	eng := pub.NewEngine(pub.FromGraph(g), pub.Options{SkipIndex: true})
	req := pub.Request{
		Source:     g.VertexName(0),
		Target:     g.VertexName(graph.VertexID(g.NumVertices() - 1)),
		Labels:     []string{g.LabelName(0), g.LabelName(1)},
		Algorithm:  pub.UIS,
		Constraint: lubm.Constraints()[0].SPARQL,
	}
	start := time.Now()
	if _, err := eng.Query(context.Background(), req); err != nil {
		return fmt.Errorf("bench: first-query measurement: %w", err)
	}
	fx.FirstQuerySeconds = time.Since(start).Seconds()
	return nil
}

// measureQCacheGets measures contended Get throughput on the real
// (padded-shard) cache: conc goroutines each iterate a strided slice of
// a prefilled key set, so hits dominate and the measurement stresses
// shard locks and counters rather than eviction.
func measureQCacheGets(conc int) float64 {
	const nkeys = 4096
	const opsPerWorker = 1 << 18
	c := qcache.New[int](nkeys)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		c.Add(keys[i], i)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				c.Get(keys[(i*conc+w)%nkeys])
			}
		}(w)
	}
	wg.Wait()
	return float64(conc*opsPerWorker) / time.Since(start).Seconds()
}

// RunScale prints the scale report as text (cmd/lscrbench -exp scale)
// and fails unless every identity check passed.
func RunScale(w io.Writer, cfg Config, edges int) error {
	rep, err := MeasureScale(cfg, edges)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scale tier at %d-edge target (GOMAXPROCS=%d, NumCPU=%d)\n",
		rep.EdgesTarget, rep.GOMAXPROCS, rep.NumCPU)
	if rep.EnvironmentWarning != "" {
		fmt.Fprintf(w, "WARNING: %s\n", rep.EnvironmentWarning)
	}
	for _, sec := range []*ScaleDataset{&rep.LUBM, &rep.YAGO} {
		fmt.Fprintf(w, "%s: |V|=%d |E|=%d k=%d (gen %.1fs, workload %.1fs, %d queries)\n",
			sec.Dataset, sec.Vertices, sec.Edges, sec.Landmarks,
			sec.GenSeconds, sec.WorkloadSeconds, sec.Queries)
		tw := newTab(w)
		if len(sec.Index) > 0 {
			fmt.Fprintln(tw, "  index build\tworkers\tseconds\tspeedup")
			for _, p := range sec.Index {
				fmt.Fprintf(tw, "  \t%d\t%.3f\t%.2fx\n", p.Workers, p.Seconds, p.Speedup)
			}
		}
		fmt.Fprintln(tw, "  INS queries\tconcurrency\tqps\tspeedup")
		for _, p := range sec.Query {
			fmt.Fprintf(tw, "  \t%d\t%.1f\t%.2fx\n", p.Concurrency, p.QPS, p.Speedup)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "cache: cold %.0f qps, warm %.0f qps (%.2fx)\n",
		rep.Cache.ColdQPS, rep.Cache.WarmQPS, rep.Cache.Speedup)
	fmt.Fprintf(w, "mutate: read-only %.0f qps, %.0f%% retained under writes, %.0f write ops/s\n",
		rep.Mutate.ReadOnlyQPS, rep.Mutate.ReadRetention*100, rep.Mutate.WriteOpsPerSec)
	fmt.Fprintf(w, "fixes: qcache get %.0f qps @1 / %.0f qps @%d; witness %.1f allocs %.0f B per op (was %d B of visited arrays alone); first query %.4fs\n",
		rep.Fixes.QCacheGetQPSC1, rep.Fixes.QCacheGetQPSCMax, rep.GOMAXPROCS,
		rep.Fixes.WitnessAllocsPerOp, rep.Fixes.WitnessBytesPerOp,
		rep.Fixes.PrevVisitedBytesPerOp, rep.Fixes.FirstQuerySeconds)
	fmt.Fprintf(w, "answers identical across all phases: %v\n", rep.Identical)
	if !rep.Identical {
		return fmt.Errorf("bench: scale answers diverged")
	}
	return nil
}

// RunScaleJSON writes the report as indented JSON — the format committed
// to BENCH_scale.json so later PRs can track the trajectory.
func RunScaleJSON(w io.Writer, cfg Config, edges int) error {
	rep, err := MeasureScale(cfg, edges)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Identical {
		return fmt.Errorf("bench: scale answers diverged")
	}
	return nil
}
