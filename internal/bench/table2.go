package bench

import (
	"fmt"
	"io"
	"time"

	"lscr/internal/lcr"
	"lscr/internal/lscr"
	"lscr/internal/lubm"
)

// RunTable2 regenerates Table 2: the D0–D5 dataset sizes and the indexing
// time (IT) and space (IS) of the local index versus the traditional
// landmark index of [19]. As in the paper — where the traditional method
// exhausted the 8-hour budget beyond D0 — the traditional index is built
// only on D0; the remaining cells print "-".
func RunTable2(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()

	type row struct {
		name            string
		vertices, edges int
		localIT         time.Duration
		localIS         int64
		tradIT          time.Duration
		tradIS          int64
		sccIT           time.Duration
		sccIS           int64
		tradRan         bool
	}
	var rows []row

	// D0: the small comparison dataset (0.06M/0.23M in the paper).
	d0cfg := lubm.DefaultConfig(1)
	d0cfg.Seed = cfg.Seed
	d0cfg.DeptsPerUniversity = 2
	d0 := lubm.Generate(d0cfg)
	r := row{name: "D0", vertices: d0.NumVertices(), edges: d0.NumEdges(), tradRan: true}
	start := time.Now()
	lidx := lscr.NewLocalIndex(d0, lscr.IndexParams{Seed: cfg.Seed})
	r.localIT = time.Since(start)
	r.localIS = lidx.SizeBytes()
	start = time.Now()
	// SkipRL: the R_L precomputation of [19] enumerates all label subsets
	// up to |ℒ|/4+1, which at LUBM's ~25 labels would add hours without
	// changing the comparison's shape.
	tidx := lcr.NewLandmarkIndex(d0, lcr.LandmarkParams{SkipRL: true})
	r.tradIT = time.Since(start)
	r.tradIS = tidx.SizeBytes()
	// The second §3.2 baseline, Zou et al. [25]: SCC decomposition with
	// per-component local transitive closures. Also D0-only ("[25] do not
	// scale well on large graphs").
	start = time.Now()
	sidx := lcr.NewSCCIndex(d0)
	r.sccIT = time.Since(start)
	r.sccIS = sidx.SizeBytes()
	rows = append(rows, r)

	// D1–D5: local index only.
	for _, spec := range Datasets(cfg.Scale) {
		g := buildDataset(spec, cfg.Seed)
		r := row{name: spec.Name, vertices: g.NumVertices(), edges: g.NumEdges()}
		start := time.Now()
		idx := lscr.NewLocalIndex(g, lscr.IndexParams{Seed: cfg.Seed})
		r.localIT = time.Since(start)
		r.localIS = idx.SizeBytes()
		rows = append(rows, r)
	}

	fmt.Fprintf(w, "Table 2 — synthetic datasets and indexing cost (scale=%d)\n\n", cfg.Scale)
	tw := newTab(w)
	fmt.Fprintf(tw, "Dataset\tVertex\tEdge\tLocal IT(ms)\tLocal IS(KB)\tLandmark[19] IT(ms)\tIS(KB)\tSCC[25] IT(ms)\tIS(KB)\n")
	for _, r := range rows {
		trad1, trad2, scc1, scc2 := "-", "-", "-", "-"
		if r.tradRan {
			trad1 = fmt.Sprintf("%.0f", float64(r.tradIT)/float64(time.Millisecond))
			trad2 = fmt.Sprintf("%d", r.tradIS/1024)
			scc1 = fmt.Sprintf("%.0f", float64(r.sccIT)/float64(time.Millisecond))
			scc2 = fmt.Sprintf("%d", r.sccIS/1024)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%d\t%s\t%s\t%s\t%s\n",
			r.name, r.vertices, r.edges,
			float64(r.localIT)/float64(time.Millisecond), r.localIS/1024,
			trad1, trad2, scc1, scc2)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nTable 3 — the five substructure constraints:\n")
	for _, c := range lubm.Constraints() {
		fmt.Fprintf(w, "  %s (%s)\n    %s\n", c.Name, c.Blurb, c.SPARQL)
	}
	return nil
}
