package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestMeasureCacheSpeedup is a correctness smoke test at a tiny scale —
// the speedup magnitude is machine-dependent and asserted only by the
// committed BENCH_cache.json, but identity and counter invariants must
// hold everywhere.
func TestMeasureCacheSpeedup(t *testing.T) {
	rep, err := MeasureCacheSpeedup(Config{QueriesPerGroup: 2, Seed: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Error("cached and uncached answers diverged")
	}
	if rep.Queries != 2*40 || rep.DistinctConstraints != 5 {
		t.Errorf("workload shape: %d queries over %d constraints", rep.Queries, rep.DistinctConstraints)
	}
	if rep.ColdQPS <= 0 || rep.WarmQPS <= 0 {
		t.Errorf("non-positive QPS: cold %f warm %f", rep.ColdQPS, rep.WarmQPS)
	}
	if rep.CacheEntries != 5 || rep.CacheMisses != 5 {
		t.Errorf("cache counters: %d entries, %d misses (want 5, 5)", rep.CacheEntries, rep.CacheMisses)
	}
	// Two full passes through the warm engine minus the five compiles.
	if want := int64(2*rep.Queries) - 5; rep.CacheHits != want {
		t.Errorf("cache hits = %d, want %d", rep.CacheHits, want)
	}
}

func TestRunCacheSpeedupJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := RunCacheSpeedupJSON(&buf, Config{QueriesPerGroup: 1, Seed: 4}, 1); err != nil {
		t.Fatal(err)
	}
	var rep CacheReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if !rep.Identical || rep.Speedup <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRunCacheSpeedupText(t *testing.T) {
	var buf bytes.Buffer
	if err := RunCacheSpeedup(&buf, Config{QueriesPerGroup: 1, Seed: 4}, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"constraint-cache speedup", "cold", "warm", "identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
