package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"lscr/internal/lscr"
	"lscr/internal/workload"
)

// The parallel-speedup harness is not a paper figure: it tracks how well
// the implementation exploits cores, the first axis of the ROADMAP's
// production-scale goal. It measures (a) local-index construction time
// at increasing worker counts, asserting the builds are identical, and
// (b) INS query throughput at increasing fan-out over one shared index,
// asserting the answers match the sequential run. cmd/lscrbench exposes
// it as -exp parallel (text) and -exp parallel-json (the BENCH_parallel.json
// trajectory format).

// ParallelReport is the machine-readable baseline (BENCH_parallel.json).
type ParallelReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU and EnvironmentWarning make the baseline honest about its
	// host: a GOMAXPROCS=4 run on a 1-core machine still sweeps worker
	// counts, but its speedups measure scheduling, not hardware, and the
	// committed JSON must say so (see guard.go).
	NumCPU             int    `json:"numcpu"`
	EnvironmentWarning string `json:"environment_warning,omitempty"`
	Dataset            string `json:"dataset"`
	Vertices           int    `json:"vertices"`
	Edges              int    `json:"edges"`
	Landmarks          int    `json:"landmarks"`
	Queries            int    `json:"queries"`

	Index []IndexPoint      `json:"index"`
	Query []ThroughputPoint `json:"query"`

	// Identical confirms every parallel build matched the 1-worker build
	// and every fan-out produced the sequential answers.
	Identical bool `json:"identical"`
}

// IndexPoint is one index-construction measurement.
type IndexPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// Speedup is seconds(1 worker) / seconds. On a single-core host it
	// hovers around 1 regardless of worker count.
	Speedup float64 `json:"speedup"`
}

// ThroughputPoint is one query-throughput measurement.
type ThroughputPoint struct {
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"qps"`
	Speedup     float64 `json:"speedup"`
}

// workerLevels returns the sweep {1, 2, 4, ..., GOMAXPROCS} (deduplicated,
// ascending, always containing 1, 4 and GOMAXPROCS so the 4-worker
// speedup criterion is always measured).
func workerLevels() []int {
	maxp := runtime.GOMAXPROCS(0)
	set := map[int]bool{1: true, 4: true, maxp: true}
	for w := 2; w < maxp; w *= 2 {
		set[w] = true
	}
	var out []int
	for w := range set {
		out = append(out, w)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// MeasureParallel runs the sweep and returns the report.
func MeasureParallel(cfg Config) (*ParallelReport, error) {
	if err := requireParallelEnv("parallel"); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	spec := DatasetSpec{Name: "D1", Universities: 1 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)

	rep := &ParallelReport{
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		EnvironmentWarning: environmentWarning(),
		Dataset:            spec.Name,
		Vertices:           g.NumVertices(),
		Edges:              g.NumEdges(),
		Identical:          true,
	}

	// (a) Index construction at each worker level. The 1-worker build is
	// the reference; the others must reproduce it bit-for-bit (compared
	// here by the Entries/SizeBytes invariants; the unit tests compare
	// the full II/EIT/D contents).
	var ref *lscr.LocalIndex
	var refSecs float64
	for _, w := range workerLevels() {
		start := time.Now()
		idx := lscr.NewLocalIndex(g, lscr.IndexParams{Seed: cfg.Seed, Workers: w})
		secs := time.Since(start).Seconds()
		if ref == nil {
			ref, refSecs = idx, secs
		} else if idx.Entries() != ref.Entries() || idx.SizeBytes() != ref.SizeBytes() {
			rep.Identical = false
		}
		rep.Index = append(rep.Index, IndexPoint{Workers: w, Seconds: secs, Speedup: refSecs / secs})
		rep.Landmarks = len(idx.Landmarks())
	}

	// (b) Query throughput over the shared reference index.
	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return nil, err
	}
	trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
		Count: cfg.QueriesPerGroup, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	qs := append(append([]workload.Query{}, trueQ...), falseQ...)
	rep.Queries = len(qs)
	if len(qs) == 0 {
		return nil, fmt.Errorf("bench: empty parallel workload")
	}

	var refAns []bool
	var refQPS float64
	for _, c := range workerLevels() {
		ans := make([]bool, len(qs))
		var (
			errMu    sync.Mutex
			firstErr error
		)
		start := time.Now()
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(qs) {
						return
					}
					ok, _, err := lscr.INS(g, ref, qs[i].Query, vs)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					ans[i] = ok
				}
			}()
		}
		wg.Wait()
		secs := time.Since(start).Seconds()
		if firstErr != nil {
			return nil, firstErr
		}
		qps := float64(len(qs)) / secs
		if refAns == nil {
			refAns, refQPS = ans, qps
		} else {
			for i := range ans {
				if ans[i] != refAns[i] {
					rep.Identical = false
				}
			}
		}
		rep.Query = append(rep.Query, ThroughputPoint{Concurrency: c, QPS: qps, Speedup: qps / refQPS})
	}
	for i := range qs {
		if refAns[i] != qs[i].Expected {
			return nil, fmt.Errorf("bench: INS answered query %d wrongly under fan-out", i)
		}
	}
	return rep, nil
}

// RunParallel prints the sweep as a table (cmd/lscrbench -exp parallel).
func RunParallel(w io.Writer, cfg Config) error {
	rep, err := MeasureParallel(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "parallel speedup on %s (|V|=%d |E|=%d, k=%d, %d queries, GOMAXPROCS=%d)\n",
		rep.Dataset, rep.Vertices, rep.Edges, rep.Landmarks, rep.Queries, rep.GOMAXPROCS)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "index build\tworkers\tseconds\tspeedup")
	for _, p := range rep.Index {
		fmt.Fprintf(tw, "\t%d\t%.3f\t%.2fx\n", p.Workers, p.Seconds, p.Speedup)
	}
	fmt.Fprintln(tw, "INS queries\tconcurrency\tqps\tspeedup")
	for _, p := range rep.Query {
		fmt.Fprintf(tw, "\t%d\t%.0f\t%.2fx\n", p.Concurrency, p.QPS, p.Speedup)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "identical across worker counts: %v\n", rep.Identical)
	if rep.EnvironmentWarning != "" {
		fmt.Fprintf(w, "WARNING: %s\n", rep.EnvironmentWarning)
	}
	return nil
}

// RunParallelJSON writes the report as indented JSON — the format
// committed to BENCH_parallel.json so later PRs can track the trajectory.
func RunParallelJSON(w io.Writer, cfg Config) error {
	rep, err := MeasureParallel(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
