package bench

import (
	"runtime"
	"strings"
	"testing"
)

// The smoke runs the full scale pipeline at a CI-sized edge target —
// every phase, two orders of magnitude below the committed baseline.
func TestMeasureScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and indexes a ~60k-edge graph per generator")
	}
	forceParallelEnv(t)
	const target = 60_000
	rep, err := MeasureScale(Config{QueriesPerGroup: 2, Seed: 1}, target)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatal("scale answers diverged from the serial reference")
	}
	if rep.EdgesTarget != target {
		t.Fatalf("edges target = %d, want %d", rep.EdgesTarget, target)
	}
	for _, sec := range []*ScaleDataset{&rep.LUBM, &rep.YAGO} {
		if sec.Edges < target {
			t.Errorf("%s generated %d edges, want >= %d", sec.Dataset, sec.Edges, target)
		}
		if len(sec.Query) < 2 || sec.Query[0].Concurrency != 1 {
			t.Errorf("%s sweep must start at concurrency 1: %+v", sec.Dataset, sec.Query)
		}
		for _, p := range sec.Query {
			if p.QPS <= 0 {
				t.Errorf("%s degenerate throughput point %+v", sec.Dataset, p)
			}
		}
	}
	if len(rep.LUBM.Index) < 2 || rep.LUBM.Index[0].Workers != 1 {
		t.Errorf("index sweep must start at 1 worker: %+v", rep.LUBM.Index)
	}
	if rep.Cache == nil || !rep.Cache.Identical {
		t.Errorf("cache phase missing or diverged: %+v", rep.Cache)
	}
	if rep.Mutate == nil || !rep.Mutate.Identical {
		t.Errorf("mutate phase missing or diverged: %+v", rep.Mutate)
	}
	if rep.Fixes.QCacheGetQPSC1 <= 0 || rep.Fixes.QCacheGetQPSCMax <= 0 {
		t.Errorf("qcache fix not measured: %+v", rep.Fixes)
	}
	if rep.Fixes.PrevVisitedBytesPerOp != 2*rep.LUBM.Vertices {
		t.Errorf("prev visited bytes = %d, want 2*|V| = %d",
			rep.Fixes.PrevVisitedBytesPerOp, 2*rep.LUBM.Vertices)
	}
	if rep.Fixes.FirstQuerySeconds <= 0 {
		t.Errorf("first-query latency not measured: %+v", rep.Fixes)
	}
	if runtime.GOMAXPROCS(0) > runtime.NumCPU() && rep.EnvironmentWarning == "" {
		t.Error("oversubscribed host not annotated")
	}
}

func TestMeasureScaleRefusesSerialHost(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if _, err := MeasureScale(Config{}, 1000); err == nil {
		t.Fatal("MeasureScale ran at GOMAXPROCS=1; want a refusal error")
	} else if !strings.Contains(err.Error(), "GOMAXPROCS") {
		t.Fatalf("refusal error should name GOMAXPROCS: %v", err)
	}
}
