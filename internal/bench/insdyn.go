package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	pub "lscr"
	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/lubm"
	"lscr/internal/workload"
)

// The insdyn harness measures the dynamic-index tentpole: with
// incremental maintenance on (the default), INS keeps its landmark
// pruning live while the mutation overlay grows; with maintenance off
// (Options.NoIndexMaintenance — the PR 5 behaviour), the first overlay
// op downgrades INS to unpruned search until the next compaction. Two
// engines replay the same insert-only script batch by batch, never
// compacting, and the harness samples INS throughput on both (plus UIS
// as the index-free floor) at each overlay size. At every step the two
// engines' answers — Reachable and |V(S,G)| — must be identical
// (maintained pruning is exact; only the visit counts may differ), and
// the run fails otherwise. cmd/lscrbench exposes it as -exp insdyn /
// insdyn-json (the BENCH_insdyn.json format).

// InsDynStep is one sampled overlay size.
type InsDynStep struct {
	// OverlayOps is the accumulated uncompacted edge-op count.
	OverlayOps int `json:"overlay_ops"`
	// MaintainedINSQPS: INS throughput with live maintenance;
	// BaselineINSQPS: same queries, maintenance disabled (stale index,
	// pruning off); UISQPS: the index-free algorithm as the floor.
	MaintainedINSQPS float64 `json:"maintained_ins_qps"`
	BaselineINSQPS   float64 `json:"baseline_ins_qps"`
	UISQPS           float64 `json:"uis_qps"`
	// Speedup = MaintainedINSQPS / BaselineINSQPS.
	Speedup float64 `json:"ins_speedup"`
}

// InsDynReport is the machine-readable baseline (BENCH_insdyn.json).
type InsDynReport struct {
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Dataset     string `json:"dataset"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	Queries     int    `json:"queries"`
	Concurrency int    `json:"concurrency"`
	Batches     int    `json:"batches"`
	OpsPerBatch int    `json:"ops_per_batch"`

	// Steps samples throughput at each overlay size, starting at 0.
	Steps []InsDynStep `json:"steps"`

	// OverlaySpeedup is the headline number — the geometric mean of the
	// maintained/baseline INS ratio over every step with a non-empty
	// overlay (step 0 has two identical engines; any deviation from 1.0
	// there is pure measurement noise): what live maintenance is worth
	// once the overlay has real size.
	OverlaySpeedup float64 `json:"overlay_ins_speedup"`

	// Maintenance counters after the full script (mirrors the /healthz
	// surface): propagated entries and batches, and the dirty-landmark
	// count — zero here, because the script is insert-only.
	MaintBatches   int64 `json:"maint_batches"`
	EntriesAdded   int64 `json:"maint_entries_added"`
	DirtyLandmarks int   `json:"dirty_landmarks"`

	// Identical confirms the maintained and baseline engines agreed on
	// every answer (Reachable and |V(S,G)|) at every overlay size.
	Identical bool `json:"identical"`
}

// insDynScript precomputes insert-only batches between existing
// vertices: every insert lands in some landmark's region with
// probability ~|F|/|V|, so the maintained index genuinely propagates.
func insDynScript(g *graph.Graph, seed int64, batches, opsPerBatch int) [][]pub.Mutation {
	r := rng(seed, "insdyn")
	script := make([][]pub.Mutation, batches)
	for bi := range script {
		batch := make([]pub.Mutation, 0, opsPerBatch)
		for oi := 0; oi < opsPerBatch; oi++ {
			batch = append(batch, pub.Mutation{
				Op:      pub.OpAddEdge,
				Subject: g.VertexName(graph.VertexID(r.Intn(g.NumVertices()))),
				Label:   g.LabelName(graph.Label(r.Intn(g.NumLabels()))),
				Object:  g.VertexName(graph.VertexID(r.Intn(g.NumVertices()))),
			})
		}
		script[bi] = batch
	}
	return script
}

// MeasureInsDyn runs the maintained-vs-disabled INS comparison across a
// growing overlay and returns the report.
func MeasureInsDyn(cfg Config, concurrency int) (*InsDynReport, error) {
	cfg = cfg.withDefaults()
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	spec := DatasetSpec{Name: "D1", Universities: 1 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	ctx := context.Background()

	rep := &InsDynReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Dataset:     spec.Name,
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		Concurrency: concurrency,
		Batches:     6,
		OpsPerBatch: cfg.QueriesPerGroup * 48,
		Identical:   true,
	}

	// INS workload: the paper's generated true/false query groups over
	// the Table 3 constraints — the query population where landmark
	// pruning is designed to pay (the random-pair workload of the mutate
	// harness terminates too quickly to exercise it). The same requests
	// re-run as UIS give the index-free floor.
	var insReqs, uisReqs []pub.Request
	for si, sName := range []string{"S1", "S2", "S3"} {
		nc, _ := lubm.Constraint(sName)
		cons, vs, err := compileConstraint(g, sName)
		if err != nil {
			return nil, err
		}
		trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
			Count: cfg.QueriesPerGroup,
			Seed:  cfg.Seed + int64(si),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: workload %s: %w", sName, err)
		}
		for _, wq := range append(trueQ, falseQ...) {
			var labels []string
			for l := 0; l < g.NumLabels(); l++ {
				if wq.Labels.Contains(labelset.Label(l)) {
					labels = append(labels, g.LabelName(graph.Label(l)))
				}
			}
			req := pub.Request{
				Source:     g.VertexName(wq.Source),
				Target:     g.VertexName(wq.Target),
				Labels:     labels,
				Constraint: nc.SPARQL,
				Algorithm:  pub.INS,
			}
			insReqs = append(insReqs, req)
			req.Algorithm = pub.UIS
			uisReqs = append(uisReqs, req)
		}
	}
	rep.Queries = len(insReqs)

	opts := pub.Options{IndexSeed: cfg.Seed, CompactAfter: -1}
	maintained := pub.NewEngine(pub.FromGraph(g), opts)
	base := opts
	base.NoIndexMaintenance = true
	baseline := pub.NewEngine(pub.FromGraph(g), base)

	// One warmup pass per engine fills the epoch's constraint cache so
	// the timed passes measure search, not SPARQL evaluation. The timed
	// passes interleave the engines (maintained, baseline, maintained,
	// …) and keep each engine's best, so frequency drift and cache
	// warming hit both sides equally instead of biasing whichever runs
	// later.
	bo := pub.BatchOptions{Concurrency: concurrency}
	warm := func(e *pub.Engine, reqs []pub.Request) ([]pub.QueryOutcome, error) {
		out := e.QueryBatch(ctx, reqs, bo)
		for i, o := range out {
			if o.Err != nil {
				return nil, fmt.Errorf("query %d: %w", i, o.Err)
			}
		}
		return out, nil
	}
	timed := func(e *pub.Engine, reqs []pub.Request) float64 {
		start := time.Now()
		e.QueryBatch(ctx, reqs, bo)
		return float64(len(reqs)) / time.Since(start).Seconds()
	}
	const passes = 3

	script := insDynScript(g, cfg.Seed, rep.Batches, rep.OpsPerBatch)
	sample := func() error {
		var step InsDynStep
		step.OverlayOps = maintained.Epoch().OverlayOps
		mOut, err := warm(maintained, insReqs)
		if err != nil {
			return fmt.Errorf("bench: maintained INS: %w", err)
		}
		bOut, err := warm(baseline, insReqs)
		if err != nil {
			return fmt.Errorf("bench: baseline INS: %w", err)
		}
		uOut, err := warm(maintained, uisReqs)
		if err != nil {
			return fmt.Errorf("bench: UIS: %w", err)
		}
		for pass := 0; pass < passes; pass++ {
			step.MaintainedINSQPS = max(step.MaintainedINSQPS, timed(maintained, insReqs))
			step.BaselineINSQPS = max(step.BaselineINSQPS, timed(baseline, insReqs))
			step.UISQPS = max(step.UISQPS, timed(maintained, uisReqs))
		}
		step.Speedup = step.MaintainedINSQPS / step.BaselineINSQPS
		for i := range insReqs {
			m, b, u := mOut[i].Response, bOut[i].Response, uOut[i].Response
			if m.Reachable != b.Reachable || m.SatisfyingVertices != b.SatisfyingVertices ||
				m.Reachable != u.Reachable {
				rep.Identical = false
			}
		}
		rep.Steps = append(rep.Steps, step)
		return nil
	}

	if err := sample(); err != nil {
		return nil, err
	}
	for _, batch := range script {
		if _, err := maintained.Apply(ctx, batch); err != nil {
			return nil, fmt.Errorf("bench: apply (maintained): %w", err)
		}
		if _, err := baseline.Apply(ctx, batch); err != nil {
			return nil, fmt.Errorf("bench: apply (baseline): %w", err)
		}
		if err := sample(); err != nil {
			return nil, err
		}
	}
	logMean := 0.0
	for _, s := range rep.Steps[1:] {
		logMean += math.Log(s.Speedup)
	}
	rep.OverlaySpeedup = math.Exp(logMean / float64(len(rep.Steps)-1))

	maint := maintained.IndexMaintenance()
	rep.MaintBatches = maint.Batches
	rep.EntriesAdded = maint.EntriesAdded
	rep.DirtyLandmarks = maint.DirtyLandmarks
	if !maint.IndexCurrent || maint.DirtyLandmarks != 0 {
		return nil, fmt.Errorf("bench: insert-only script left maintenance state %+v", maint)
	}
	if bm := baseline.IndexMaintenance(); bm.Batches != 0 || bm.IndexCurrent {
		return nil, fmt.Errorf("bench: baseline engine unexpectedly maintained its index: %+v", bm)
	}
	return rep, nil
}

// RunInsDyn prints the dynamic-maintenance report (cmd/lscrbench -exp
// insdyn) and fails unless maintained and baseline answers agreed at
// every overlay size.
func RunInsDyn(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureInsDyn(cfg, concurrency)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dynamic INS on %s (|V|=%d |E|=%d): %d batches x %d inserts, %d queries, %d workers\n",
		rep.Dataset, rep.Vertices, rep.Edges, rep.Batches, rep.OpsPerBatch, rep.Queries, rep.Concurrency)
	fmt.Fprintf(w, "%12s %16s %16s %12s %9s\n", "overlay", "maintained-INS", "baseline-INS", "UIS", "speedup")
	for _, s := range rep.Steps {
		fmt.Fprintf(w, "%12d %12.0f qps %12.0f qps %8.0f qps %8.2fx\n",
			s.OverlayOps, s.MaintainedINSQPS, s.BaselineINSQPS, s.UISQPS, s.Speedup)
	}
	fmt.Fprintf(w, "overlay speedup %.2fx (geomean over non-empty-overlay steps); %d entries propagated over %d batches, %d dirty landmarks\n",
		rep.OverlaySpeedup, rep.EntriesAdded, rep.MaintBatches, rep.DirtyLandmarks)
	fmt.Fprintf(w, "maintained-vs-baseline answers identical: %v\n", rep.Identical)
	if !rep.Identical {
		return fmt.Errorf("bench: maintained and baseline answers diverged")
	}
	return nil
}

// RunInsDynJSON writes the report as indented JSON — the format
// committed to BENCH_insdyn.json so later PRs can track the trajectory.
func RunInsDynJSON(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureInsDyn(cfg, concurrency)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Identical {
		return fmt.Errorf("bench: maintained and baseline answers diverged")
	}
	return nil
}
