package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	pub "lscr"
	"lscr/internal/graph"
	"lscr/internal/lubm"
)

// The restart harness measures the persistence tentpole: cold-boot
// latency of the three ways an engine can come up on the same KG.
//
//   - rebuild: the legacy path — read a snapshot file, re-intern every
//     name and edge, build the local index from scratch (what every
//     boot cost before segments existed);
//   - segment: lscr.Open on a sealed store — mmap the newest segment
//     and serve its CSR and index in place, no parse, no index build;
//   - recovery: lscr.Open after a simulated kill -9 mid-write-workload —
//     the segment open plus a WAL-tail replay through the normal commit
//     path.
//
// Boot latency is also reported as boots/sec (*_boot_qps) so
// scripts/benchdiff guards the trajectory like every other BENCH_*
// artifact. The harness is also the correctness smoke: it exits
// nonzero unless the segment-booted engine answers the whole workload
// bit-identically to the rebuilt one (INS Stats included) and the
// crash-recovered engine matches a rebuild on the final edge set.

// RestartReport is the machine-readable baseline (BENCH_restart.json).
type RestartReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Dataset    string `json:"dataset"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	Queries    int    `json:"queries"`

	// Batches × OpsPerBatch mutations form the unsealed WAL tail the
	// recovery boot replays.
	Batches     int `json:"batches"`
	OpsPerBatch int `json:"ops_per_batch"`

	// Cold-boot latency (best of restartBootIters) per path, and the
	// headline ratio rebuild/segment.
	RebuildBootMS  float64 `json:"rebuild_boot_ms"`
	SegmentBootMS  float64 `json:"segment_boot_ms"`
	RecoveryBootMS float64 `json:"recovery_boot_ms"`
	SpeedupX       float64 `json:"restart_speedup_x"`

	// The same figures as boots/sec, the *qps* convention benchdiff
	// tracks.
	RebuildBootQPS  float64 `json:"rebuild_boot_qps"`
	SegmentBootQPS  float64 `json:"segment_boot_qps"`
	RecoveryBootQPS float64 `json:"recovery_boot_qps"`

	// Identical: segment-boot answers were bit-identical (Reachable,
	// Stats, |V(S,G)|) to the rebuilt engine's. Recovered: the
	// crash-recovered engine matched a from-scratch rebuild on the
	// final edge set (INS compared by answer — its index is the
	// maintained one, not a fresh build).
	Identical bool `json:"identical"`
	Recovered bool `json:"recovered"`
}

// restartBootIters boots each path this many times and keeps the best —
// cold-cache jitter is one-sided noise.
const restartBootIters = 3

// restartRequests rotates the paper's constraints over random pairs and
// all four algorithms, like the mutate harness.
func restartRequests(g *graph.Graph, cfg Config, n int) []pub.Request {
	consts := lubm.Constraints()
	r := rng(cfg.Seed, "restart-queries")
	algos := []pub.Algorithm{pub.INS, pub.UIS, pub.UISStar, pub.Conjunctive}
	reqs := make([]pub.Request, n)
	for i := range reqs {
		labels := make([]string, 2)
		for j := range labels {
			labels[j] = g.LabelName(graph.Label(r.Intn(g.NumLabels())))
		}
		req := pub.Request{
			Source:    g.VertexName(graph.VertexID(r.Intn(g.NumVertices()))),
			Target:    g.VertexName(graph.VertexID(r.Intn(g.NumVertices()))),
			Labels:    labels,
			Algorithm: algos[i%len(algos)],
		}
		if req.Algorithm == pub.Conjunctive {
			req.Constraints = []string{consts[i%len(consts)].SPARQL, consts[(i+1)%len(consts)].SPARQL}
		} else {
			req.Constraint = consts[i%len(consts)].SPARQL
		}
		reqs[i] = req
	}
	return reqs
}

// MeasureRestart times the three boot paths and runs both identity
// checks, returning the report.
func MeasureRestart(cfg Config, concurrency int) (*RestartReport, error) {
	cfg = cfg.withDefaults()
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	spec := DatasetSpec{Name: "D1", Universities: 1 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	ctx := context.Background()

	rep := &RestartReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Dataset:     spec.Name,
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		Queries:     cfg.QueriesPerGroup * 10,
		Batches:     cfg.QueriesPerGroup * 2,
		OpsPerBatch: 16,
	}
	reqs := restartRequests(g, cfg, rep.Queries)
	opts := pub.Options{IndexSeed: cfg.Seed, CompactAfter: -1}
	bo := pub.BatchOptions{Concurrency: concurrency}

	dir, err := os.MkdirTemp("", "lscr-restart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Seal the store once (this is the cost segments amortise away) and
	// write the snapshot file the rebuild path boots from.
	creator, err := pub.Create(dir, pub.FromGraph(g), opts)
	if err != nil {
		return nil, fmt.Errorf("bench: create store: %w", err)
	}
	if err := creator.Close(); err != nil {
		return nil, err
	}
	var snap bytes.Buffer
	if err := pub.FromGraph(g).WriteSnapshot(&snap); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(dir, "kg.snap")
	if err := os.WriteFile(snapPath, snap.Bytes(), 0o644); err != nil {
		return nil, err
	}

	// Boot path 1: parse + rebuild, the pre-persistence cold start.
	var rebuilt *pub.Engine
	rep.RebuildBootMS, err = bestOfBoots(func() (func() error, error) {
		data, err := os.ReadFile(snapPath)
		if err != nil {
			return nil, err
		}
		kg, err := pub.LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		rebuilt = pub.NewEngine(kg, opts)
		return nil, nil
	})
	if err != nil {
		return nil, fmt.Errorf("bench: rebuild boot: %w", err)
	}

	// Boot path 2: mmap the sealed segment.
	var opened *pub.Engine
	rep.SegmentBootMS, err = bestOfBoots(func() (func() error, error) {
		e, err := pub.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		prev := opened
		opened = e
		if prev != nil {
			return prev.Close, nil
		}
		return nil, nil
	})
	if err != nil {
		return nil, fmt.Errorf("bench: segment boot: %w", err)
	}

	// Identity: the mmap'd engine must be bit-identical to the rebuilt
	// one — Reachable, Stats and |V(S,G)| on every request, INS included.
	rep.Identical = true
	segAns := opened.QueryBatch(ctx, reqs, bo)
	refAns := rebuilt.QueryBatch(ctx, reqs, bo)
	for i := range reqs {
		if segAns[i].Err != nil {
			return nil, fmt.Errorf("bench: segment query %d: %w", i, segAns[i].Err)
		}
		if refAns[i].Err != nil {
			return nil, fmt.Errorf("bench: rebuilt query %d: %w", i, refAns[i].Err)
		}
		a, b := segAns[i].Response, refAns[i].Response
		if a.Reachable != b.Reachable || a.Stats != b.Stats || a.SatisfyingVertices != b.SatisfyingVertices {
			rep.Identical = false
		}
	}

	// Kill mid-write-workload: commit the script durably, then abandon
	// the engine without Close — exactly the files a kill -9 leaves.
	writer := opened
	opened = nil
	for bi, batch := range mutateScript(g, cfg.Seed, rep.Batches, rep.OpsPerBatch) {
		if _, err := writer.Apply(ctx, batch); err != nil {
			return nil, fmt.Errorf("bench: batch %d: %w", bi, err)
		}
	}

	// Boot path 3: segment open + WAL-tail replay. Every iteration
	// replays the same unsealed tail (nothing rotates it).
	var recovered *pub.Engine
	rep.RecoveryBootMS, err = bestOfBoots(func() (func() error, error) {
		e, err := pub.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		prev := recovered
		recovered = e
		if prev != nil {
			return prev.Close, nil
		}
		return nil, nil
	})
	if err != nil {
		return nil, fmt.Errorf("bench: recovery boot: %w", err)
	}
	defer recovered.Close()

	// The recovered engine must match a from-scratch rebuild on the
	// final edge set (snapshot round-trip → fresh Builder → fresh index,
	// sharing no state). INS compares by answer: recovery maintains the
	// sealed index instead of rebuilding it.
	var finalSnap bytes.Buffer
	if err := recovered.KG().WriteSnapshot(&finalSnap); err != nil {
		return nil, err
	}
	finalKG, err := pub.LoadSnapshot(&finalSnap)
	if err != nil {
		return nil, err
	}
	final := pub.NewEngine(finalKG, opts)
	rep.Recovered = true
	recAns := recovered.QueryBatch(ctx, reqs, bo)
	finAns := final.QueryBatch(ctx, reqs, bo)
	for i := range reqs {
		if recAns[i].Err != nil {
			return nil, fmt.Errorf("bench: recovered query %d: %w", i, recAns[i].Err)
		}
		if finAns[i].Err != nil {
			return nil, fmt.Errorf("bench: final rebuild query %d: %w", i, finAns[i].Err)
		}
		a, b := recAns[i].Response, finAns[i].Response
		if a.Reachable != b.Reachable {
			rep.Recovered = false
		}
		if reqs[i].Algorithm != pub.INS && (a.Stats != b.Stats || a.SatisfyingVertices != b.SatisfyingVertices) {
			rep.Recovered = false
		}
	}

	rep.SpeedupX = rep.RebuildBootMS / rep.SegmentBootMS
	rep.RebuildBootQPS = 1000 / rep.RebuildBootMS
	rep.SegmentBootQPS = 1000 / rep.SegmentBootMS
	rep.RecoveryBootQPS = 1000 / rep.RecoveryBootMS
	return rep, nil
}

// bestOfBoots runs boot restartBootIters times and returns the fastest
// wall-clock in milliseconds. boot may return a cleanup func that runs
// after the clock stops (closing the previous iteration's engine).
func bestOfBoots(boot func() (func() error, error)) (float64, error) {
	best := 0.0
	for i := 0; i < restartBootIters; i++ {
		start := time.Now()
		cleanup, err := boot()
		elapsed := time.Since(start).Seconds() * 1000
		if err != nil {
			return 0, err
		}
		if cleanup != nil {
			if err := cleanup(); err != nil {
				return 0, err
			}
		}
		if i == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// RunRestart prints the cold-boot report (cmd/lscrbench -exp restart)
// and fails unless both identity checks held.
func RunRestart(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureRestart(cfg, concurrency)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cold boot on %s (|V|=%d |E|=%d), %d-batch WAL tail x %d ops\n",
		rep.Dataset, rep.Vertices, rep.Edges, rep.Batches, rep.OpsPerBatch)
	fmt.Fprintf(w, "parse + index rebuild  %10.2f ms\n", rep.RebuildBootMS)
	fmt.Fprintf(w, "segment open (mmap)    %10.2f ms   (%.0fx faster)\n", rep.SegmentBootMS, rep.SpeedupX)
	fmt.Fprintf(w, "crash recovery         %10.2f ms   (open + %d-batch replay)\n", rep.RecoveryBootMS, rep.Batches)
	fmt.Fprintf(w, "segment-vs-rebuilt answers identical: %v\n", rep.Identical)
	fmt.Fprintf(w, "crash-recovered answers correct:      %v\n", rep.Recovered)
	return restartVerdict(rep)
}

// RunRestartJSON writes the report as indented JSON — the format
// committed to BENCH_restart.json so later PRs can track the trajectory.
func RunRestartJSON(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureRestart(cfg, concurrency)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	return restartVerdict(rep)
}

func restartVerdict(rep *RestartReport) error {
	if !rep.Identical {
		return fmt.Errorf("bench: segment-booted and rebuilt answers diverged")
	}
	if !rep.Recovered {
		return fmt.Errorf("bench: crash-recovered answers diverged from rebuild on the final edge set")
	}
	return nil
}
