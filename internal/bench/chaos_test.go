package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestChaosHarness runs a bounded chaos pass — enough schedules to
// cycle the whole fault menu once — and requires every invariant the
// full tier enforces: faults fired, writer recovered, answers identical
// to the fault-free oracle, explicit shedding under overload, no
// goroutine leak. The CI chaos smoke runs the same path under -race.
func TestChaosHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness needs a multi-second cluster run")
	}
	schedules := 10 // one full pass over the fault menu
	rep, err := MeasureChaos(Config{Scale: 1, QueriesPerGroup: 6, Seed: 42}, schedules)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InjectedFaults == 0 {
		t.Fatal("no fault fired across the schedules")
	}
	if rep.WriterRestarts == 0 {
		t.Fatal("no schedule poisoned the writer — fail-stop recovery untested")
	}
	if !rep.Identical {
		t.Fatal("chaos run diverged from the fault-free oracle")
	}
	if rep.GoroutineLeak {
		t.Fatal("goroutines leaked across the chaos run")
	}
	if rep.OverloadSheds == 0 || rep.OverloadAdmittedQPS == 0 {
		t.Fatalf("overload phase: %d sheds, %.0f admitted qps", rep.OverloadSheds, rep.OverloadAdmittedQPS)
	}
}

// TestChaosJSONShape: the -exp chaos-json output parses back into the
// report struct (the committed BENCH_chaos.json contract).
func TestChaosJSONShape(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness needs a multi-second cluster run")
	}
	var buf bytes.Buffer
	if err := RunChaosJSON(&buf, Config{Scale: 1, QueriesPerGroup: 6, Seed: 7}, 4); err != nil {
		t.Fatal(err)
	}
	var rep ChaosReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("chaos JSON does not parse: %v\n%s", err, buf.String())
	}
	if rep.Schedules != 4 {
		t.Fatalf("schedules = %d, want 4", rep.Schedules)
	}
}
