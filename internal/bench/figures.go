package bench

import (
	"fmt"
	"io"
	"time"

	"lscr/internal/workload"
)

// RunFigure regenerates one of Figures 10–14: for the Table 3 constraint
// sName (S1–S5), it sweeps datasets D1–D5, generating a true and a false
// query group per dataset and reporting the average running time and
// average passed-vertex number of UIS, UIS* and INS — the four panels
// (a)–(d) of each figure.
func RunFigure(w io.Writer, sName string, cfg Config) error {
	cfg = cfg.withDefaults()
	figNum := map[string]int{"S1": 10, "S2": 11, "S3": 12, "S4": 13, "S5": 14}[sName]
	if figNum == 0 {
		return fmt.Errorf("bench: no figure for constraint %q", sName)
	}
	type row struct {
		dataset  string
		vertices int
		vs       int
		res      map[string]map[bool]algoResult // algo -> isTrueGroup -> result
	}
	var rows []row
	algos := []string{"UIS", "UIS*", "INS"}

	for _, spec := range Datasets(cfg.Scale) {
		g := buildDataset(spec, cfg.Seed)
		cons, vs, err := compileConstraint(g, sName)
		if err != nil {
			return err
		}
		idx := buildIndex(g, spec, cfg.Seed)
		trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
			Count: cfg.QueriesPerGroup,
			Seed:  cfg.Seed + int64(figNum),
		})
		if err != nil {
			return fmt.Errorf("bench: %s on %s: %w", sName, spec.Name, err)
		}
		if len(trueQ) == 0 || len(falseQ) == 0 {
			return fmt.Errorf("bench: %s on %s produced empty group (true=%d false=%d)",
				sName, spec.Name, len(trueQ), len(falseQ))
		}
		r := row{dataset: spec.Name, vertices: g.NumVertices(), vs: len(vs),
			res: map[string]map[bool]algoResult{}}
		for _, algo := range algos {
			r.res[algo] = map[bool]algoResult{}
			tr, err := runGroup(g, idx, vs, trueQ, algo)
			if err != nil {
				return err
			}
			fa, err := runGroup(g, idx, vs, falseQ, algo)
			if err != nil {
				return err
			}
			r.res[algo][true] = tr
			r.res[algo][false] = fa
		}
		rows = append(rows, r)
	}

	fmt.Fprintf(w, "Figure %d — substructure constraint %s (scale=%d, %d queries/group)\n",
		figNum, sName, cfg.Scale, cfg.QueriesPerGroup)
	panel := func(title string, f func(algoResult) string, trueGroup bool) {
		fmt.Fprintf(w, "\n%s\n", title)
		tw := newTab(w)
		fmt.Fprintf(tw, "dataset\t|V|\t|V(S,G)|\tUIS\tUIS*\tINS\n")
		for _, r := range rows {
			fmt.Fprintf(tw, "%s\t%d\t%d", r.dataset, r.vertices, r.vs)
			for _, algo := range algos {
				fmt.Fprintf(tw, "\t%s", f(r.res[algo][trueGroup]))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	ms := func(a algoResult) string {
		return fmt.Sprintf("%.3f", float64(a.AvgTime)/float64(time.Millisecond))
	}
	pv := func(a algoResult) string { return fmt.Sprintf("%.0f", a.AvgPassed) }
	panel(fmt.Sprintf("(a) avg running time, true queries (ms)"), ms, true)
	panel(fmt.Sprintf("(b) avg running time, false queries (ms)"), ms, false)
	panel(fmt.Sprintf("(c) avg passed-vertex number, true queries"), pv, true)
	panel(fmt.Sprintf("(d) avg passed-vertex number, false queries"), pv, false)
	return nil
}
