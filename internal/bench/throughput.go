package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	pub "lscr"
	"lscr/internal/graph"
	"lscr/internal/lubm"
	"lscr/internal/workload"
)

// RunThroughput measures end-to-end QPS through the public API: it
// builds an Engine over the cached D1 KG and pushes one S1 workload
// through Engine.ReachBatch at fan-out 1 (the serial baseline) and at
// the requested concurrency (0 = all cores), checking the answers
// agree. Unlike RunParallel — which times the core algorithm — this
// path includes the name resolution and SPARQL compilation every real
// request pays. cmd/lscrbench exposes it as -exp throughput.
func RunThroughput(w io.Writer, cfg Config, concurrency int) error {
	cfg = cfg.withDefaults()
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	spec := DatasetSpec{Name: "D1", Universities: 1 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return err
	}
	trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
		Count: cfg.QueriesPerGroup, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}

	// The workload generator emits compiled internal queries; map them
	// back to names so the batch exercises the full public path.
	nc, _ := lubm.Constraint("S1")
	var qs []pub.Query
	var expected []bool
	for _, q := range append(append([]workload.Query{}, trueQ...), falseQ...) {
		var labels []string
		for l := 0; l < g.NumLabels(); l++ {
			if q.Labels.Contains(graph.Label(l)) {
				labels = append(labels, g.LabelName(graph.Label(l)))
			}
		}
		qs = append(qs, pub.Query{
			Source:     g.VertexName(q.Source),
			Target:     g.VertexName(q.Target),
			Labels:     labels,
			Constraint: nc.SPARQL,
		})
		expected = append(expected, q.Expected)
	}
	if len(qs) == 0 {
		return fmt.Errorf("bench: empty throughput workload")
	}

	kg := pub.FromGraph(g)
	start := time.Now()
	eng := pub.NewEngine(kg, pub.Options{IndexSeed: cfg.Seed})
	buildSecs := time.Since(start).Seconds()

	start = time.Now()
	serial := eng.ReachBatch(qs, 1)
	serialSecs := time.Since(start).Seconds()
	start = time.Now()
	batch := eng.ReachBatch(qs, concurrency)
	batchSecs := time.Since(start).Seconds()

	for i := range qs {
		if serial[i].Err != nil {
			return fmt.Errorf("bench: throughput query %d: %w", i, serial[i].Err)
		}
		if batch[i].Err != nil {
			return fmt.Errorf("bench: concurrent throughput query %d: %w", i, batch[i].Err)
		}
		if serial[i].Result.Reachable != expected[i] || batch[i].Result.Reachable != expected[i] {
			return fmt.Errorf("bench: throughput query %d answered wrongly (serial=%v batch=%v want=%v)",
				i, serial[i].Result.Reachable, batch[i].Result.Reachable, expected[i])
		}
	}
	fmt.Fprintf(w, "throughput on %s (|V|=%d |E|=%d), %d queries, GOMAXPROCS=%d\n",
		spec.Name, g.NumVertices(), g.NumEdges(), len(qs), runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "index build             %8.3fs\n", buildSecs)
	fmt.Fprintf(w, "ReachBatch concurrency 1 %7.0f qps\n", float64(len(qs))/serialSecs)
	fmt.Fprintf(w, "ReachBatch concurrency %d %7.0f qps (%.2fx)\n",
		concurrency, float64(len(qs))/batchSecs, serialSecs/batchSecs)
	fmt.Fprintln(w, "answers identical and correct across fan-outs")
	return nil
}
