package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	pub "lscr"
	"lscr/internal/graph"
	"lscr/internal/lubm"
)

// The cache-speedup harness measures the constraint-memoization tentpole:
// production workloads repeat the same substructure constraints
// constantly, so the engine caches the compiled constraint and its
// V(S,G) per constraint text. Cold = a cache-disabled engine paying
// sparql.Parse + Compile + MatchAll on every query; warm = a cached
// engine primed with one pass. Both push the identical workload through
// Engine.ReachBatch and must produce identical answers. cmd/lscrbench
// exposes it as -exp cachespeedup (text) and -exp cachespeedup-json
// (the BENCH_cache.json trajectory format).

// CacheReport is the machine-readable baseline (BENCH_cache.json).
type CacheReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Dataset    string `json:"dataset"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`

	// Queries is the workload size; DistinctConstraints how many unique
	// constraint texts it rotates through (Table 3's S1–S5), so the warm
	// hit rate is (Queries-Distinct)/Queries per pass.
	Queries             int `json:"queries"`
	DistinctConstraints int `json:"distinct_constraints"`
	Concurrency         int `json:"concurrency"`

	ColdQPS float64 `json:"cold_qps"`
	WarmQPS float64 `json:"warm_qps"`
	// Speedup is WarmQPS / ColdQPS — the amortization win of memoizing
	// constraint compilation.
	Speedup float64 `json:"speedup"`

	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`

	// Identical confirms the cached engine returned exactly the uncached
	// answers (Reachable and SatisfyingVertices per query).
	Identical bool `json:"identical"`
}

// MeasureCacheSpeedup runs the warm-vs-cold comparison and returns the
// report.
func MeasureCacheSpeedup(cfg Config, concurrency int) (*CacheReport, error) {
	cfg = cfg.withDefaults()
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	spec := DatasetSpec{Name: "D1", Universities: 1 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)

	// The workload rotates the paper's S1–S5 over random vertex pairs:
	// every constraint repeats Queries/5 times, which is the access
	// pattern the cache exists for. Each query carries a random 2-label
	// constraint — the paper's query model restricts labels, and narrow
	// label sets keep the search term small relative to the per-query
	// compile term the cache amortizes.
	consts := lubm.Constraints()
	r := rng(cfg.Seed, "cachespeedup")
	n := cfg.QueriesPerGroup * 40
	qs := make([]pub.Query, n)
	for i := range qs {
		labels := make([]string, 2)
		for j := range labels {
			labels[j] = g.LabelName(graph.Label(r.Intn(g.NumLabels())))
		}
		qs[i] = pub.Query{
			Source:     g.VertexName(graph.VertexID(r.Intn(g.NumVertices()))),
			Target:     g.VertexName(graph.VertexID(r.Intn(g.NumVertices()))),
			Labels:     labels,
			Constraint: consts[i%len(consts)].SPARQL,
		}
	}

	// One index build shared by both engines: the cold engine saves its
	// index and the warm engine reloads it, so the comparison isolates
	// the cache.
	kg := pub.FromGraph(g)
	cold := pub.NewEngine(kg, pub.Options{IndexSeed: cfg.Seed, ConstraintCacheSize: -1})
	var idx bytes.Buffer
	if err := cold.SaveIndex(&idx); err != nil {
		return nil, err
	}
	warm, err := pub.NewEngineFromIndex(kg, &idx, pub.Options{})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	coldRes := cold.ReachBatch(qs, concurrency)
	coldSecs := time.Since(start).Seconds()

	warm.ReachBatch(qs, concurrency) // priming pass: compile each distinct constraint once
	start = time.Now()
	warmRes := warm.ReachBatch(qs, concurrency)
	warmSecs := time.Since(start).Seconds()

	rep := &CacheReport{
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Dataset:             spec.Name,
		Vertices:            g.NumVertices(),
		Edges:               g.NumEdges(),
		Queries:             n,
		DistinctConstraints: len(consts),
		Concurrency:         concurrency,
		ColdQPS:             float64(n) / coldSecs,
		WarmQPS:             float64(n) / warmSecs,
		Identical:           true,
	}
	rep.Speedup = rep.WarmQPS / rep.ColdQPS
	st := warm.CacheStats()
	rep.CacheHits, rep.CacheMisses, rep.CacheEntries = st.Hits, st.Misses, st.Entries

	for i := range qs {
		if coldRes[i].Err != nil {
			return nil, fmt.Errorf("bench: cold query %d: %w", i, coldRes[i].Err)
		}
		if warmRes[i].Err != nil {
			return nil, fmt.Errorf("bench: warm query %d: %w", i, warmRes[i].Err)
		}
		if coldRes[i].Result.Reachable != warmRes[i].Result.Reachable ||
			coldRes[i].Result.SatisfyingVertices != warmRes[i].Result.SatisfyingVertices {
			rep.Identical = false
		}
	}
	return rep, nil
}

// RunCacheSpeedup prints the comparison (cmd/lscrbench -exp cachespeedup).
func RunCacheSpeedup(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureCacheSpeedup(cfg, concurrency)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "constraint-cache speedup on %s (|V|=%d |E|=%d), %d queries over %d constraints, concurrency %d\n",
		rep.Dataset, rep.Vertices, rep.Edges, rep.Queries, rep.DistinctConstraints, rep.Concurrency)
	fmt.Fprintf(w, "cold (cache disabled)  %8.0f qps\n", rep.ColdQPS)
	fmt.Fprintf(w, "warm (cache primed)    %8.0f qps  (%.2fx)\n", rep.WarmQPS, rep.Speedup)
	fmt.Fprintf(w, "cache: %d hits / %d misses / %d entries\n",
		rep.CacheHits, rep.CacheMisses, rep.CacheEntries)
	fmt.Fprintf(w, "answers identical with and without cache: %v\n", rep.Identical)
	if !rep.Identical {
		return fmt.Errorf("bench: cached and uncached answers diverged")
	}
	return nil
}

// RunCacheSpeedupJSON writes the report as indented JSON — the format
// committed to BENCH_cache.json so later PRs can track the trajectory.
func RunCacheSpeedupJSON(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureCacheSpeedup(cfg, concurrency)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	// The artifact records the divergence; the nonzero exit makes the CI
	// smoke an actual guard rather than a green no-op.
	if !rep.Identical {
		return fmt.Errorf("bench: cached and uncached answers diverged")
	}
	return nil
}
