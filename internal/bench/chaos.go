package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	pub "lscr"
	"lscr/api"
	"lscr/client"
	"lscr/internal/cluster"
	"lscr/internal/failpoint"
	"lscr/server"
)

// The chaos harness is the robustness proof for the serving stack: a
// writer, two WAL-tailing followers and the cluster gateway run a
// mutation workload while deterministic fault schedules fire at the
// storage, replication and dispatch failpoint sites. Every schedule
// asserts the fail-stop contract — an injected write failure poisons
// the writer, reads keep serving, a restart recovers — and per-epoch
// identity against a fault-free in-memory oracle that applies the same
// batches and seals at the same points (the oracle never touches
// storage, so the armed sites cannot reach it). An overload sub-phase
// saturates an admission-gated server at ~2x capacity and requires
// explicit shedding with bounded admitted latency. The whole run ends
// with a goroutine-leak check: after teardown the process must return
// to its pre-chaos goroutine count.

// ChaosReport is the machine-readable baseline (BENCH_chaos.json).
type ChaosReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Dataset    string `json:"dataset"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`

	// Schedules fault schedules ran; InjectedFaults fired across them;
	// WriterRestarts recovered a poisoned writer; Rebootstraps counts
	// follower segment re-bootstraps (initial two included).
	Schedules      int   `json:"schedules"`
	InjectedFaults int64 `json:"injected_faults"`
	WriterRestarts int   `json:"writer_restarts"`
	Rebootstraps   int64 `json:"follower_rebootstraps"`

	// Reads driven through the gateway during the schedules, and how
	// many failed even after the gateway's redispatch and the client's
	// retries (chaos tolerates some, the verdict bounds the rate).
	GatewayReads    int64 `json:"gateway_reads"`
	GatewayReadErrs int64 `json:"gateway_read_errs"`

	// The overload sub-phase: an admission-gated server driven at ~2x
	// capacity must shed explicitly while bounding what it admits.
	OverloadAdmittedQPS   float64 `json:"overload_admitted_qps"`
	OverloadSheds         int64   `json:"overload_sheds"`
	OverloadAdmittedP99MS float64 `json:"overload_admitted_p99_ms"`

	// Identical: writer == oracle after every schedule (including the
	// post-restart realignments) AND both followers converged to
	// bit-identical answers at the final epoch.
	Identical bool `json:"identical"`
	// GoroutineLeak: the process failed to return to its baseline
	// goroutine count after teardown.
	GoroutineLeak bool `json:"goroutine_leak"`
}

// Chaos harness knobs.
const (
	chaosBatchesPerSchedule = 3
	chaosOpsPerBatch        = 6
	chaosProbeQueries       = 12
	chaosReadsPerSchedule   = 4

	overloadInflight  = 4
	overloadQueue     = 4
	overloadQueueWait = 10 * time.Millisecond
	overloadDelay     = 2 * time.Millisecond
	overloadClients   = 16
	overloadWindow    = 500 * time.Millisecond
)

// chaosMenu is the per-schedule fault rotation: each entry is one
// LSCR_FAILPOINTS-style activation hitting a different layer. Torn
// values cut mid-record (WAL records and segment headers are longer
// than the prefixes), exercising the truncation/recovery paths rather
// than clean absence.
var chaosMenu = []string{
	"wal-append=error-once",
	"wal-append=torn=9,once",
	"wal-sync=error-once",
	"seg-write=torn=16,once",
	"seg-sync=error-once",
	"seg-rename=error-once",
	"wal-rotate-rename=error-once",
	"dir-sync=error-once",
	"replicate-read=error-every=4",
	"gateway-dispatch=error-every=5",
}

// swapHandler lets the writer restart in place: the listener and URL
// survive while the handler generation behind them is swapped.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *swapHandler) swap(h http.Handler) { s.h.Store(&h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// MeasureChaos runs schedules deterministic fault schedules over a
// live writer+2-follower+gateway cluster and returns the report.
func MeasureChaos(cfg Config, schedules int) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	if schedules < 1 {
		schedules = 50
	}
	failpoint.DisarmAll()
	defer failpoint.DisarmAll()

	spec := DatasetSpec{Name: "D1", Universities: 1 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	ctx := context.Background()
	rep := &ChaosReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dataset:    spec.Name,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Schedules:  schedules,
		Identical:  true,
	}

	dir, err := os.MkdirTemp("", "lscr-chaos-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	opts := pub.Options{IndexSeed: cfg.Seed, CompactAfter: -1}
	eng, err := pub.Create(dir, pub.FromGraph(g), opts)
	if err != nil {
		return nil, fmt.Errorf("bench: create store: %w", err)
	}
	// The fault-free oracle: an in-memory engine applying the same
	// batches and sealing at the same epochs. It has no store, so the
	// armed storage sites never fire in it.
	oracle := pub.NewEngine(pub.FromGraph(g), opts)

	// One closer list, run exactly once — teardown must complete before
	// the goroutine-leak check, and the deferred backstop must not run
	// things twice.
	var closers []func()
	var closeOnce sync.Once
	shutdown := func() {
		closeOnce.Do(func() {
			for i := len(closers) - 1; i >= 0; i-- {
				closers[i]()
			}
		})
	}
	defer shutdown()

	sw := &swapHandler{}
	sw.swap(server.New(eng, eng.KG()))
	writerURL, stopWriter, err := serveHandler(sw)
	if err != nil {
		eng.Close()
		return nil, err
	}
	closers = append(closers, func() { eng.Close() }, stopWriter)

	fcfg := cluster.FollowerConfig{Writer: writerURL, Poll: 100 * time.Millisecond, Retry: 10 * time.Millisecond}
	f1, err := cluster.StartFollower(ctx, fcfg)
	if err != nil {
		return nil, err
	}
	closers = append(closers, f1.Close)
	f2, err := cluster.StartFollower(ctx, fcfg)
	if err != nil {
		return nil, err
	}
	closers = append(closers, f2.Close)
	f1URL, stopF1, err := serveHandler(f1)
	if err != nil {
		return nil, err
	}
	closers = append(closers, stopF1)
	f2URL, stopF2, err := serveHandler(f2)
	if err != nil {
		return nil, err
	}
	closers = append(closers, stopF2)

	gw := cluster.NewCoordinator(cluster.Config{
		Writer:   writerURL,
		Replicas: []string{f1URL, f2URL},
		Cooldown: 50 * time.Millisecond,
		Logf:     func(string, ...any) {},
	})
	gwURL, stopGW, err := serveHandler(gw)
	if err != nil {
		return nil, err
	}
	closers = append(closers, gw.Close, stopGW)
	readC := client.New(gwURL)

	// Goroutine baseline after the cluster is up: the leak check asks
	// whether chaos (restarts, rebootstraps, shed reads) left strays
	// beyond what teardown reclaims.
	baseline := runtime.NumGoroutine()

	probe := restartRequests(g, cfg, chaosProbeQueries)
	bo := pub.BatchOptions{Concurrency: runtime.GOMAXPROCS(0)}
	compare := func(when string, a, b *pub.Engine) {
		wa := a.QueryBatch(ctx, probe, bo)
		wb := b.QueryBatch(ctx, probe, bo)
		for i := range probe {
			if (wa[i].Err == nil) != (wb[i].Err == nil) {
				rep.Identical = false
				return
			}
			if wa[i].Err != nil {
				continue
			}
			ra, rb := wa[i].Response, wb[i].Response
			if ra.Reachable != rb.Reachable || ra.Stats != rb.Stats || ra.SatisfyingVertices != rb.SatisfyingVertices {
				rep.Identical = false
				return
			}
		}
	}

	// restart recovers a poisoned writer in place: close, reopen the
	// store, swap the handler generation. Returns the fresh engine.
	restart := func() (*pub.Engine, error) {
		eng.Close()
		ne, err := pub.Open(dir, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: restart writer: %w", err)
		}
		sw.swap(server.New(ne, ne.KG()))
		rep.WriterRestarts++
		return ne, nil
	}

	// realign brings the oracle to the restarted writer's epoch: the
	// fsync-ambiguity window means a failed Apply (or seal) may still
	// have become durable, in which case the recovered writer is one
	// epoch ahead and the oracle replays the pending step.
	realign := func(pending []pub.Mutation, sealing bool) error {
		we, oe := eng.Epoch().Epoch, oracle.Epoch().Epoch
		switch {
		case we == oe:
			return nil // the failed step was lost on both sides
		case we == oe+1 && !sealing:
			_, err := oracle.Apply(ctx, pending)
			return err
		case we == oe+1 && sealing:
			_, err := oracle.Compact(ctx)
			return err
		}
		rep.Identical = false
		return fmt.Errorf("bench: writer at epoch %d vs oracle %d after restart", we, oe)
	}

	script := mutateScript(g, cfg.Seed, schedules*chaosBatchesPerSchedule, chaosOpsPerBatch)
	next := 0
	for s := 0; s < schedules; s++ {
		failpoint.Seed(cfg.Seed + int64(s))
		if err := failpoint.Arm(chaosMenu[s%len(chaosMenu)]); err != nil {
			return nil, err
		}

		for b := 0; b < chaosBatchesPerSchedule && next < len(script); b++ {
			batch := script[next]
			next++
			if _, err := eng.Apply(ctx, batch); err != nil {
				rep.InjectedFaults++
				// Fail-stop: the engine must now be poisoned and still
				// answer reads from its last epoch.
				if eng.Poisoned() == nil {
					return nil, fmt.Errorf("bench: Apply failed (%v) without poisoning", err)
				}
				if eng.QueryBatch(ctx, probe[:1], bo)[0].Err != nil {
					return nil, fmt.Errorf("bench: poisoned writer stopped serving reads")
				}
				failpoint.DisarmAll()
				if eng, err = restart(); err != nil {
					return nil, err
				}
				if err := realign(batch, false); err != nil {
					return nil, err
				}
				continue
			}
			if _, err := oracle.Apply(ctx, batch); err != nil {
				return nil, fmt.Errorf("bench: oracle apply: %w", err)
			}
		}

		// Seal every other schedule: compactions hit the segment-write,
		// seal-rename, rotation and dir-sync sites.
		if s%2 == 1 {
			if _, err := eng.Compact(ctx); err != nil {
				rep.InjectedFaults++
				if eng.Poisoned() == nil {
					return nil, fmt.Errorf("bench: Compact failed (%v) without poisoning", err)
				}
				failpoint.DisarmAll()
				if eng, err = restart(); err != nil {
					return nil, err
				}
				if err := realign(nil, true); err != nil {
					return nil, err
				}
			} else if _, err := oracle.Compact(ctx); err != nil {
				return nil, fmt.Errorf("bench: oracle compact: %w", err)
			}
		}

		// A few reads through the gateway while the schedule's faults
		// are still armed: redispatch and client retries should absorb
		// most of the turbulence; the verdict bounds the failure rate.
		for r := 0; r < chaosReadsPerSchedule; r++ {
			q := probe[r%len(probe)]
			wire := api.QueryRequest{
				Source: q.Source, Target: q.Target, Labels: q.Labels,
				Constraint: q.Constraint, Constraints: q.Constraints,
				Algorithm: api.AlgorithmName(q.Algorithm),
			}
			rep.GatewayReads++
			if _, err := readC.Query(ctx, wire); err != nil {
				rep.GatewayReadErrs++
			}
		}

		failpoint.DisarmAll()
		if eng.Poisoned() != nil {
			// A site armed for this schedule fired on a background path;
			// recover before the identity check.
			if eng, err = restart(); err != nil {
				return nil, err
			}
			if err := realign(nil, false); err != nil {
				return nil, err
			}
		}
		compare(fmt.Sprintf("schedule %d", s), eng, oracle)
		if !rep.Identical {
			return rep, fmt.Errorf("bench: writer diverged from oracle after schedule %d", s)
		}
	}

	// Convergence: both followers must reach the final epoch and answer
	// the probe set bit-identically to the writer.
	head := eng.Epoch().Epoch
	if err := waitReplicated(f1, head); err != nil {
		return nil, err
	}
	if err := waitReplicated(f2, head); err != nil {
		return nil, err
	}
	compare("follower 1", eng, f1.Engine())
	compare("follower 2", eng, f2.Engine())
	rep.Rebootstraps = f1.Bootstraps() + f2.Bootstraps()

	// Overload: swap an admission-gated handler generation over the
	// writer, slow every query via the serve-delay site, and drive ~2x
	// the gate's capacity. Shedding must be explicit (429), and what is
	// admitted must answer with bounded latency.
	if err := measureOverload(rep, eng, writerURL, sw); err != nil {
		return rep, err
	}
	sw.swap(server.New(eng, eng.KG()))

	// Teardown, then the leak check: the goroutine count must return to
	// the baseline (plus a small slack for runtime/network strays).
	shutdown()
	rep.GoroutineLeak = !settlesTo(baseline+4, 5*time.Second)
	return rep, chaosVerdict(rep)
}

func measureOverload(rep *ChaosReport, eng *pub.Engine, writerURL string, sw *swapHandler) error {
	sw.swap(server.New(eng, eng.KG(), server.WithAdmission(server.AdmissionOptions{
		MaxInflight: overloadInflight,
		MaxQueue:    overloadQueue,
		QueueWait:   overloadQueueWait,
		RetryAfter:  time.Second,
	})))
	if err := failpoint.Set(server.FPServe, "delay="+overloadDelay.String()); err != nil {
		return err
	}
	defer failpoint.DisarmAll()

	// Raw per-attempt requests: client retries would turn sheds into
	// waiting, hiding the thing being measured.
	c := client.New(writerURL, client.WithRetry(1, 0))
	var (
		mu        sync.Mutex
		latencies []time.Duration
		sheds     atomic.Int64
		hardErrs  atomic.Int64
	)
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < overloadClients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Since(start) < overloadWindow {
				qstart := time.Now()
				_, err := c.Query(ctx, api.QueryRequest{Source: "no-such-vertex", Target: "no-such-vertex"})
				elapsed := time.Since(qstart)
				var apiErr *client.APIError
				status := 0
				if errors.As(err, &apiErr) {
					status = apiErr.StatusCode
				}
				switch {
				case err == nil || status == http.StatusBadRequest:
					// An unknown-vertex 400 still went through the gate,
					// the serve-delay site and the engine — what matters
					// here is admission latency, not reachability.
					mu.Lock()
					latencies = append(latencies, elapsed)
					mu.Unlock()
				case status == http.StatusTooManyRequests:
					if apiErr.RetryAfter <= 0 {
						hardErrs.Add(1) // a shed without Retry-After is a bug
					}
					sheds.Add(1)
				default:
					hardErrs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	window := time.Since(start).Seconds()

	rep.OverloadSheds = sheds.Load()
	rep.OverloadAdmittedQPS = float64(len(latencies)) / window
	if n := len(latencies); n > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rep.OverloadAdmittedP99MS = float64(latencies[(n*99)/100]) / float64(time.Millisecond)
	}
	if hardErrs.Load() > 0 {
		return fmt.Errorf("bench: %d overload requests failed outside the 400/429 contract", hardErrs.Load())
	}
	return nil
}

// settlesTo polls until the goroutine count drops to max or the
// deadline passes.
func settlesTo(max int, within time.Duration) bool {
	deadline := time.Now().Add(within)
	for {
		if runtime.NumGoroutine() <= max {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func chaosVerdict(rep *ChaosReport) error {
	switch {
	case !rep.Identical:
		return fmt.Errorf("bench: chaos run diverged from the fault-free oracle")
	case rep.GoroutineLeak:
		return fmt.Errorf("bench: goroutines leaked across the chaos run")
	case rep.InjectedFaults == 0:
		return fmt.Errorf("bench: no fault fired — the schedules exercised nothing")
	case rep.GatewayReads > 0 && rep.GatewayReadErrs*5 > rep.GatewayReads:
		return fmt.Errorf("bench: %d/%d gateway reads failed under chaos (bound: 20%%)",
			rep.GatewayReadErrs, rep.GatewayReads)
	case rep.OverloadSheds == 0:
		return fmt.Errorf("bench: 2x saturation produced no shedding")
	case rep.OverloadAdmittedQPS == 0:
		return fmt.Errorf("bench: overload phase admitted nothing")
	case rep.OverloadAdmittedP99MS > 500:
		return fmt.Errorf("bench: admitted p99 %.1fms exceeds the 500ms bound", rep.OverloadAdmittedP99MS)
	}
	return nil
}

// RunChaos prints the chaos report (cmd/lscrbench -exp chaos) and
// fails on any broken invariant.
func RunChaos(w io.Writer, cfg Config, schedules int) error {
	rep, err := MeasureChaos(cfg, schedules)
	if rep != nil {
		fmt.Fprintf(w, "chaos on %s (|V|=%d |E|=%d): %d schedules, %d faults fired, %d writer restarts, %d rebootstraps\n",
			rep.Dataset, rep.Vertices, rep.Edges, rep.Schedules, rep.InjectedFaults, rep.WriterRestarts, rep.Rebootstraps)
		fmt.Fprintf(w, "gateway reads under chaos: %d (%d failed)\n", rep.GatewayReads, rep.GatewayReadErrs)
		fmt.Fprintf(w, "overload: %8.0f qps admitted, %d shed, admitted p99 %.1fms\n",
			rep.OverloadAdmittedQPS, rep.OverloadSheds, rep.OverloadAdmittedP99MS)
		fmt.Fprintf(w, "identical to fault-free oracle: %v; goroutine leak: %v\n", rep.Identical, rep.GoroutineLeak)
	}
	return err
}

// RunChaosJSON writes the report as indented JSON — the format
// committed to BENCH_chaos.json so later PRs can track the trajectory.
func RunChaosJSON(w io.Writer, cfg Config, schedules int) error {
	rep, err := MeasureChaos(cfg, schedules)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
