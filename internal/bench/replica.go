package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	pub "lscr"
	"lscr/api"
	"lscr/client"
	"lscr/internal/cluster"
	"lscr/internal/graph"
	"lscr/internal/lubm"
	"lscr/internal/workload"
	"lscr/server"
)

// The replica harness measures the replicated serving tier: aggregate
// read throughput through the cluster gateway with one follower vs two
// followers behind it, at proven-identical answers.
//
// Capacity model. The interesting question — does adding a replica add
// read capacity? — is about machines, and the bench host has however
// many cores it has (often one, in CI). So each follower sits behind a
// capacity gate emulating a small replica machine: depth-1 admission
// (one query in service at a time) plus a fixed service-time floor per
// query. A gated replica serves at most 1000/floorMS reads/sec
// regardless of host core count; N of them serve N times that, because
// concurrent clients overlap wall-clock waits across gates, not CPU.
// The scaling figure is therefore honest concurrency-across-machines
// scaling and reproduces on any host. Hedging is disabled during the
// measurement — a hedge is a second copy of the same query, which
// would burn gated capacity and blur the accounting.
//
// Identity. Before the clock starts, both followers replicate a
// mutation workload (batches through the writer's WAL feed, plus a
// seal they replay as a compaction) and their engines must answer a
// mixed-algorithm probe set bit-identically to the writer — Reachable,
// search Stats and |V(S,G)| — and every measured query is checked
// against its expected answer. Any divergence fails the run.

// ReplicaReport is the machine-readable baseline (BENCH_replica.json).
type ReplicaReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Dataset    string `json:"dataset"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	Queries    int    `json:"queries"`

	// Batches × OpsPerBatch mutations were replicated (plus one seal)
	// before the identity check.
	Batches     int `json:"batches"`
	OpsPerBatch int `json:"ops_per_batch"`

	// The capacity model: per-replica depth-1 admission with this
	// service-time floor, driven by this many concurrent clients.
	ServiceFloorMS float64 `json:"service_floor_ms"`
	Clients        int     `json:"clients"`

	// Aggregate read QPS through the gateway with one and two gated
	// followers, and the headline ratio.
	Replica1ReadQPS float64 `json:"replica1_read_qps"`
	Replica2ReadQPS float64 `json:"replica2_read_qps"`
	ScalingX        float64 `json:"replica_scaling_x"`

	// Identical: both followers answered the probe set bit-identically
	// to the writer AND every measured query answered as expected.
	Identical bool `json:"identical"`
}

// Replica harness knobs: the per-query service floor of a gated
// replica, the client pool driving the gateway, and the measured
// window per configuration.
const (
	replicaServiceFloor = 2 * time.Millisecond
	replicaClients      = 8
	replicaWindow       = 1200 * time.Millisecond
)

// capacityGate models one replica machine in front of a handler:
// queries admit one at a time and each occupies the replica for at
// least floor. Non-query traffic (health, replication) passes
// ungated.
type capacityGate struct {
	h     http.Handler
	floor time.Duration
	sem   chan struct{}
}

func newCapacityGate(h http.Handler, floor time.Duration) *capacityGate {
	return &capacityGate{h: h, floor: floor, sem: make(chan struct{}, 1)}
}

func (c *capacityGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || r.URL.Path != "/v1/query" {
		c.h.ServeHTTP(w, r)
		return
	}
	c.sem <- struct{}{}
	defer func() { <-c.sem }()
	start := time.Now()
	c.h.ServeHTTP(w, r)
	if d := c.floor - time.Since(start); d > 0 {
		time.Sleep(d)
	}
}

// serveHandler mounts h on a loopback listener and returns its base
// URL plus a shutdown func.
func serveHandler(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Shutdown(context.Background()) }, nil
}

// waitReplicated polls until f has replicated to epoch ep.
func waitReplicated(f *cluster.Follower, ep uint64) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f.Epoch() >= ep {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("bench: follower stuck at epoch %d, want %d", f.Epoch(), ep)
}

// MeasureReplica runs the harness and returns the report.
func MeasureReplica(cfg Config, concurrency int) (*ReplicaReport, error) {
	cfg = cfg.withDefaults()
	clients := replicaClients
	if concurrency > clients {
		clients = concurrency
	}
	spec := DatasetSpec{Name: "D1", Universities: 1 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	ctx := context.Background()

	rep := &ReplicaReport{
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Dataset:        spec.Name,
		Vertices:       g.NumVertices(),
		Edges:          g.NumEdges(),
		Queries:        cfg.QueriesPerGroup * 10,
		Batches:        cfg.QueriesPerGroup * 2,
		OpsPerBatch:    8,
		ServiceFloorMS: float64(replicaServiceFloor) / float64(time.Millisecond),
		Clients:        clients,
	}

	// The writer: a persistent engine (the WAL is the replication feed)
	// behind the real lscrd handler.
	dir, err := os.MkdirTemp("", "lscr-replica-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	opts := pub.Options{IndexSeed: cfg.Seed, CompactAfter: -1}
	eng, err := pub.Create(dir, pub.FromGraph(g), opts)
	if err != nil {
		return nil, fmt.Errorf("bench: create store: %w", err)
	}
	defer eng.Close()
	writerURL, stopWriter, err := serveHandler(server.New(eng, eng.KG()))
	if err != nil {
		return nil, err
	}
	defer stopWriter()

	// Two followers bootstrap from the segment and tail the WAL.
	fcfg := cluster.FollowerConfig{Writer: writerURL, Poll: 200 * time.Millisecond, Retry: 50 * time.Millisecond}
	f1, err := cluster.StartFollower(ctx, fcfg)
	if err != nil {
		return nil, err
	}
	defer f1.Close()
	f2, err := cluster.StartFollower(ctx, fcfg)
	if err != nil {
		return nil, err
	}
	defer f2.Close()

	// Replicate a write workload: mutation batches, a seal (replayed as
	// a follower-side compaction), more batches.
	script := mutateScript(g, cfg.Seed, rep.Batches, rep.OpsPerBatch)
	for bi, batch := range script {
		if _, err := eng.Apply(ctx, batch); err != nil {
			return nil, fmt.Errorf("bench: batch %d: %w", bi, err)
		}
		if bi == len(script)/2 {
			if _, err := eng.Compact(ctx); err != nil {
				return nil, fmt.Errorf("bench: seal: %w", err)
			}
		}
	}
	head := eng.Epoch().Epoch
	if err := waitReplicated(f1, head); err != nil {
		return nil, err
	}
	if err := waitReplicated(f2, head); err != nil {
		return nil, err
	}

	// Identity: both follower engines answer a mixed-algorithm probe set
	// bit-identically to the writer.
	rep.Identical = true
	reqs := restartRequests(g, cfg, rep.Queries)
	bo := pub.BatchOptions{Concurrency: runtime.GOMAXPROCS(0)}
	want := eng.QueryBatch(ctx, reqs, bo)
	for fi, f := range []*cluster.Follower{f1, f2} {
		got := f.Engine().QueryBatch(ctx, reqs, bo)
		for i := range reqs {
			if want[i].Err != nil {
				return nil, fmt.Errorf("bench: writer query %d: %w", i, want[i].Err)
			}
			if got[i].Err != nil {
				return nil, fmt.Errorf("bench: follower %d query %d: %w", fi+1, i, got[i].Err)
			}
			a, b := want[i].Response, got[i].Response
			if a.Reachable != b.Reachable || a.Stats != b.Stats || a.SatisfyingVertices != b.SatisfyingVertices {
				rep.Identical = false
			}
		}
	}

	// The measured read workload: an S1 query set with known answers
	// (checked on every reply), driven through the gateway by a fixed
	// client pool.
	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return nil, err
	}
	trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
		Count: cfg.QueriesPerGroup, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	nc, _ := lubm.Constraint("S1")
	var wire []api.QueryRequest
	var expected []bool
	for _, q := range append(append([]workload.Query{}, trueQ...), falseQ...) {
		var labels []string
		for l := 0; l < g.NumLabels(); l++ {
			if q.Labels.Contains(graph.Label(l)) {
				labels = append(labels, g.LabelName(graph.Label(l)))
			}
		}
		wire = append(wire, api.QueryRequest{
			Source:     g.VertexName(q.Source),
			Target:     g.VertexName(q.Target),
			Labels:     labels,
			Constraint: nc.SPARQL,
		})
		expected = append(expected, q.Expected)
	}
	if len(wire) == 0 {
		return nil, fmt.Errorf("bench: empty replica workload")
	}

	// Gate each follower to the replica-machine capacity model.
	f1URL, stopF1, err := serveHandler(newCapacityGate(f1, replicaServiceFloor))
	if err != nil {
		return nil, err
	}
	defer stopF1()
	f2URL, stopF2, err := serveHandler(newCapacityGate(f2, replicaServiceFloor))
	if err != nil {
		return nil, err
	}
	defer stopF2()

	measure := func(replicaURLs []string) (float64, error) {
		co := cluster.NewCoordinator(cluster.Config{
			Writer:     writerURL,
			Replicas:   replicaURLs,
			HedgeAfter: -1,
		})
		gwURL, stopGW, err := serveHandler(co)
		if err != nil {
			return 0, err
		}
		defer stopGW()
		c := client.New(gwURL)
		// Warm the path (connections, routing) before the clock starts.
		if _, err := c.Query(ctx, wire[0]); err != nil {
			return 0, fmt.Errorf("bench: warmup query: %w", err)
		}
		var done atomic.Int64
		var wrong atomic.Int64
		var firstErr atomic.Pointer[error]
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; time.Since(start) < replicaWindow; i++ {
					q := wire[i%len(wire)]
					resp, err := c.Query(ctx, q)
					if err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					if resp.Reachable != expected[i%len(wire)] {
						wrong.Add(1)
					}
					done.Add(1)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		if ep := firstErr.Load(); ep != nil {
			return 0, fmt.Errorf("bench: measured query failed: %w", *ep)
		}
		if wrong.Load() > 0 {
			rep.Identical = false
		}
		return float64(done.Load()) / elapsed, nil
	}

	if rep.Replica1ReadQPS, err = measure([]string{f1URL}); err != nil {
		return nil, err
	}
	if rep.Replica2ReadQPS, err = measure([]string{f1URL, f2URL}); err != nil {
		return nil, err
	}
	rep.ScalingX = rep.Replica2ReadQPS / rep.Replica1ReadQPS
	return rep, nil
}

// RunReplica prints the replica-scaling report (cmd/lscrbench -exp
// replica) and fails on any divergence.
func RunReplica(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureReplica(cfg, concurrency)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replicated reads on %s (|V|=%d |E|=%d), %d replicated batches + seal\n",
		rep.Dataset, rep.Vertices, rep.Edges, rep.Batches)
	fmt.Fprintf(w, "capacity model: depth-1 admission, %.1fms service floor, %d clients\n",
		rep.ServiceFloorMS, rep.Clients)
	fmt.Fprintf(w, "gateway + 1 follower   %8.0f qps\n", rep.Replica1ReadQPS)
	fmt.Fprintf(w, "gateway + 2 followers  %8.0f qps   (%.2fx)\n", rep.Replica2ReadQPS, rep.ScalingX)
	fmt.Fprintf(w, "follower answers bit-identical to writer: %v\n", rep.Identical)
	return replicaVerdict(rep)
}

// RunReplicaJSON writes the report as indented JSON — the format
// committed to BENCH_replica.json so later PRs can track the
// trajectory.
func RunReplicaJSON(w io.Writer, cfg Config, concurrency int) error {
	rep, err := MeasureReplica(cfg, concurrency)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	return replicaVerdict(rep)
}

func replicaVerdict(rep *ReplicaReport) error {
	if !rep.Identical {
		return fmt.Errorf("bench: replicated answers diverged from the writer's")
	}
	return nil
}
