package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	pub "lscr"
	"lscr/api"
	"lscr/client"
	"lscr/internal/graph"
	"lscr/internal/lubm"
	"lscr/internal/workload"
	"lscr/server"
)

// RunServerClient measures the full service path: it builds an Engine
// over the cached D1 KG, mounts the real lscrd handler (package
// lscr/server) on a loopback listener, and pushes one S1 workload
// through the typed client — once as individual /v1/query calls and
// once as a single /v1/batch — checking every answer against the
// in-process engine. Unlike RunThroughput, this path pays JSON
// encoding, HTTP framing and the kernel's loopback on every query,
// which is exactly what a production deployment pays. cmd/lscrbench
// exposes it as -exp serverclient.
func RunServerClient(w io.Writer, cfg Config, concurrency int) error {
	cfg = cfg.withDefaults()
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	spec := DatasetSpec{Name: "D1", Universities: 1 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return err
	}
	trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
		Count: cfg.QueriesPerGroup, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	nc, _ := lubm.Constraint("S1")
	var wire []api.QueryRequest
	var expected []bool
	for _, q := range append(append([]workload.Query{}, trueQ...), falseQ...) {
		var labels []string
		for l := 0; l < g.NumLabels(); l++ {
			if q.Labels.Contains(graph.Label(l)) {
				labels = append(labels, g.LabelName(graph.Label(l)))
			}
		}
		wire = append(wire, api.QueryRequest{
			Source:     g.VertexName(q.Source),
			Target:     g.VertexName(q.Target),
			Labels:     labels,
			Constraint: nc.SPARQL,
		})
		expected = append(expected, q.Expected)
	}
	if len(wire) == 0 {
		return fmt.Errorf("bench: empty serverclient workload")
	}

	kg := pub.FromGraph(g)
	eng := pub.NewEngine(kg, pub.Options{IndexSeed: cfg.Seed})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.New(eng, kg)}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	ctx := context.Background()
	c := client.New("http://" + ln.Addr().String())
	health, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("bench: healthz: %w", err)
	}

	// Serial round trips through POST /v1/query.
	start := time.Now()
	for i, q := range wire {
		resp, err := c.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("bench: /v1/query %d: %w", i, err)
		}
		if resp.Reachable != expected[i] {
			return fmt.Errorf("bench: /v1/query %d answered %v, want %v", i, resp.Reachable, expected[i])
		}
	}
	serialSecs := time.Since(start).Seconds()

	// One POST /v1/batch fanning out server-side.
	start = time.Now()
	batch, err := c.Batch(ctx, api.BatchRequest{Queries: wire, Concurrency: concurrency})
	if err != nil {
		return fmt.Errorf("bench: /v1/batch: %w", err)
	}
	batchSecs := time.Since(start).Seconds()
	if batch.Count != len(wire) {
		return fmt.Errorf("bench: /v1/batch answered %d of %d", batch.Count, len(wire))
	}
	for i, it := range batch.Results {
		if it.Error != "" {
			return fmt.Errorf("bench: /v1/batch %d: %s", i, it.Error)
		}
		if it.Reachable != expected[i] {
			return fmt.Errorf("bench: /v1/batch %d answered %v, want %v", i, it.Reachable, expected[i])
		}
	}

	fmt.Fprintf(w, "typed client → live /v1 on %s (|V|=%d |E|=%d), %d queries, server %s\n",
		spec.Name, g.NumVertices(), g.NumEdges(), len(wire), health.Version)
	fmt.Fprintf(w, "/v1/query serial         %7.0f qps\n", float64(len(wire))/serialSecs)
	fmt.Fprintf(w, "/v1/batch concurrency %d  %7.0f qps (%.2fx)\n",
		concurrency, float64(len(wire))/batchSecs, serialSecs/batchSecs)
	fmt.Fprintln(w, "answers identical and correct across transports")
	return nil
}
