package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunServerClient proves the acceptance path end to end: lscrbench
// round-trips a real workload through the typed client against a live
// lscrd /v1 endpoint, and every answer matches the in-process engine.
func TestRunServerClient(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real (small) index and serves it over loopback")
	}
	var buf bytes.Buffer
	if err := RunServerClient(&buf, Config{Scale: 1, QueriesPerGroup: 3, Seed: 1}, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "answers identical and correct across transports") {
		t.Fatalf("missing verification line:\n%s", out)
	}
	if !strings.Contains(out, "/v1/batch") {
		t.Fatalf("missing batch result line:\n%s", out)
	}
}
