package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/lscr"
	"lscr/internal/pattern"
)

// The CSR harness measures the storage-layout tentpole: adjacency is CSR
// with label-grouped runs, and constrained traversal walks only the runs
// inside the query's label set (the "labeled" mode) instead of scanning
// every edge and testing its label (the "filter" mode, the seed layout's
// access pattern, obtained via Graph.WithoutLabelIndex). Both modes share
// the same storage and iterate edges in the same order, so every query
// must answer with bit-identical Stats — the comparison isolates exactly
// the skip-vs-test mechanism. cmd/lscrbench exposes it as -exp csr (text)
// and -exp csr-json (the BENCH_csr.json trajectory format).

// CSRPoint is one constraint-selectivity point of the sweep.
type CSRPoint struct {
	// LabelCount is |L|, the per-query label-constraint size; 0 means the
	// whole label universe (no selectivity, the break-even case).
	LabelCount int `json:"label_count"`

	UISFilterQPS  float64 `json:"uis_filter_qps"`
	UISLabeledQPS float64 `json:"uis_labeled_qps"`
	UISSpeedup    float64 `json:"uis_speedup"`

	UISStarFilterQPS  float64 `json:"uisstar_filter_qps"`
	UISStarLabeledQPS float64 `json:"uisstar_labeled_qps"`
	UISStarSpeedup    float64 `json:"uisstar_speedup"`

	INSFilterQPS  float64 `json:"ins_filter_qps"`
	INSLabeledQPS float64 `json:"ins_labeled_qps"`
	INSSpeedup    float64 `json:"ins_speedup"`
}

// CSRReport is the machine-readable baseline (BENCH_csr.json).
type CSRReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Dataset    string `json:"dataset"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	Labels     int    `json:"labels"`

	// Queries is the per-point workload size. Queries are uncached: no
	// constraint memoization, V(S,G) precompiled once outside the timer
	// (it is an input of the algorithms), every search runs in full.
	Queries int `json:"queries"`

	Points []CSRPoint `json:"points"`

	// SelectiveSpeedup is the smallest labeled/filter speedup observed on
	// the selective points (|L| <= 2) for UIS*, the algorithm whose inner
	// loop is the adjacency scan itself (V(S,G) is an input and the
	// frontier is a plain stack, so nothing layout-independent dilutes the
	// measurement). UIS adds an SCck evaluation per passed vertex and INS
	// adds priority-queue work per discovery; their speedups are reported
	// per point to show how the layout win scales with how
	// traversal-bound the algorithm is.
	SelectiveSpeedup float64 `json:"selective_speedup"`

	// Identical confirms every query answered with bit-identical results
	// and Stats in both modes.
	Identical bool `json:"identical"`
}

// csrQuery is one workload entry with its per-point label set.
type csrQuery struct {
	q  lscr.Query
	vs []graph.VertexID
}

// csrDataset generates the sweep's KG: scale-free OUT-degree by
// preferential attachment on edge sources. Skipping a label run only pays
// where a vertex has many more edges than labels, and forward traversal
// scans out-adjacency — so the decisive shape parameter is a heavy-tailed
// out-degree, the "country/person hub with hundreds of outgoing
// statements" profile of Wikidata or DBpedia. (yagogen's preferential
// attachment, faithful to citation-style growth, concentrates degree on
// the IN side, which forward search never scans; LUBM's out-degree is
// near-uniform ≈ 4. Neither exercises the layout.)
func csrDataset(n, edgesPerEntity, labels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.Vertex(fmt.Sprintf("e%d", i))
	}
	for l := 0; l < labels; l++ {
		b.Label(fmt.Sprintf("rel%d", l))
	}
	relZipf := rand.NewZipf(rng, 1.2, 4, uint64(labels-1))
	// attach doubles as the source-attachment distribution: every edge
	// appends its source, so sampling uniformly is out-degree
	// proportional — the rich get more outgoing facts.
	attach := []graph.VertexID{0}
	for i := 1; i < n; i++ {
		m := 1 + rng.Intn(2*edgesPerEntity-1)
		for j := 0; j < m; j++ {
			var s graph.VertexID
			if rng.Intn(4) == 0 {
				s = graph.VertexID(rng.Intn(i)) // uniform escape hatch
			} else {
				s = attach[rng.Intn(len(attach))]
			}
			t := graph.VertexID(i)
			if rng.Intn(2) == 0 {
				// Preferential target half of the time: KG hubs are high
				// in- AND out-degree (a country entity is both widely
				// referenced and fact-rich), so searches actually cross
				// them.
				t = attach[rng.Intn(len(attach))]
			}
			b.AddEdge(s, graph.Label(relZipf.Uint64()), t)
			attach = append(attach, s, t)
		}
	}
	return b.Build()
}

// MeasureCSR runs the labeled-vs-filter sweep and returns the report.
func MeasureCSR(cfg Config) (*CSRReport, error) {
	cfg = cfg.withDefaults()
	g := csrDataset(20000*cfg.Scale, 12, 24, cfg.Seed)
	gFilter := g.WithoutLabelIndex()
	idx := lscr.NewLocalIndex(g, lscr.IndexParams{Seed: cfg.Seed})

	// The workload rotates anchored single-pattern constraints with small
	// V(S,G) (1..32 satisfying vertices), so the per-query cost is the
	// traversal the layout change targets rather than constraint
	// evaluation — which costs the same in both modes and would only
	// dilute the comparison. V(S,G) is evaluated once per constraint,
	// outside the timers (it is an input of the algorithms).
	type compiled struct {
		c  *pattern.Constraint
		vs []graph.VertexID
	}
	var comp []compiled
	for l := 0; l < g.NumLabels() && len(comp) < 5; l++ {
		for v := 0; v < g.NumVertices() && len(comp) < 5; v += 17 {
			if n := len(g.InWith(graph.VertexID(v), graph.Label(l))); n < 2 || n > 32 {
				continue
			}
			c := &pattern.Constraint{
				Focus: "x",
				Patterns: []pattern.TriplePattern{{
					Subject: pattern.V("x"),
					Label:   graph.Label(l),
					Object:  pattern.C(graph.VertexID(v)),
				}},
			}
			m, err := pattern.NewMatcher(g, c)
			if err != nil {
				return nil, err
			}
			comp = append(comp, compiled{c: c, vs: m.MatchAll()})
		}
	}
	if len(comp) == 0 {
		return nil, fmt.Errorf("bench: no anchored constraints found on %s", "Y1")
	}

	rep := &CSRReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dataset:    "Y1",
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		Labels:     g.NumLabels(),
		Queries:    cfg.QueriesPerGroup * 40,
		Identical:  true,
	}
	rep.SelectiveSpeedup = 1e18

	r := rng(cfg.Seed, "csr")
	universe := g.LabelUniverse()
	for _, lc := range []int{1, 2, 4, 0} {
		qs := make([]csrQuery, rep.Queries)
		for i := range qs {
			// Too-easy candidates are discarded exactly as the paper's
			// workload generation does (§6.1.1 filters queries by UIS
			// search-tree size): a query that dies at the source measures
			// per-query fixed overhead, not traversal.
			var q lscr.Query
			cc := comp[i%len(comp)]
			for try := 0; ; try++ {
				src, L := walkQuery(g, r, lc, universe)
				q = lscr.Query{
					Source: src,
					Target: graph.VertexID(r.Intn(g.NumVertices())),
					Labels: L,
				}
				q.Constraint = cc.c
				if try >= 400 {
					break
				}
				if _, tree, err := lscr.UISWithTreeSize(g, q); err != nil {
					return nil, err
				} else if tree >= csrMinTreeSize {
					break
				}
			}
			qs[i] = csrQuery{q: q, vs: cc.vs}
		}
		pt := CSRPoint{LabelCount: lc}

		fQPS, lQPS, same, err := runCSRPair(qs, func(gr *graph.Graph, cq csrQuery) (bool, lscr.Stats, error) {
			return lscr.UIS(gr, cq.q)
		}, gFilter, g)
		if err != nil {
			return nil, err
		}
		pt.UISFilterQPS, pt.UISLabeledQPS = fQPS, lQPS
		pt.UISSpeedup = lQPS / fQPS
		rep.Identical = rep.Identical && same

		fQPS, lQPS, same, err = runCSRPair(qs, func(gr *graph.Graph, cq csrQuery) (bool, lscr.Stats, error) {
			return lscr.UISStar(gr, cq.q, cq.vs)
		}, gFilter, g)
		if err != nil {
			return nil, err
		}
		pt.UISStarFilterQPS, pt.UISStarLabeledQPS = fQPS, lQPS
		pt.UISStarSpeedup = lQPS / fQPS
		rep.Identical = rep.Identical && same

		fQPS, lQPS, same, err = runCSRPair(qs, func(gr *graph.Graph, cq csrQuery) (bool, lscr.Stats, error) {
			return lscr.INS(gr, idx, cq.q, cq.vs)
		}, gFilter, g)
		if err != nil {
			return nil, err
		}
		pt.INSFilterQPS, pt.INSLabeledQPS = fQPS, lQPS
		pt.INSSpeedup = lQPS / fQPS
		rep.Identical = rep.Identical && same

		if lc >= 1 && lc <= 2 && pt.UISStarSpeedup < rep.SelectiveSpeedup {
			rep.SelectiveSpeedup = pt.UISStarSpeedup
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// walkQuery seeds one traversal-heavy query: the label set collects the
// labels met on a short random walk (so the constraint admits real paths
// instead of dying at the source) and the source is the walk's start. A
// |L|-of-|ℒ| set built this way is still selective — the labeled scan
// skips every other label's runs. lc == 0 selects the whole universe.
func walkQuery(g *graph.Graph, r *rand.Rand, lc int, universe labelset.Set) (graph.VertexID, labelset.Set) {
	src := graph.VertexID(r.Intn(g.NumVertices()))
	if lc == 0 {
		return src, universe
	}
	for try := 0; try < 64; try++ {
		src = graph.VertexID(r.Intn(g.NumVertices()))
		es := g.Out(src)
		if len(es) == 0 {
			continue
		}
		L := labelset.Set(0)
		at := src
		for hop := 0; hop < 4*lc && L.Len() < lc; hop++ {
			es := g.Out(at)
			if len(es) == 0 {
				break
			}
			e := es[r.Intn(len(es))]
			L = L.Add(e.Label)
			at = e.To
		}
		if L.Len() == lc {
			return src, L
		}
	}
	// Sparse corner: fall back to a random label set of the right size.
	L := labelset.Set(0)
	for L.Len() < lc {
		L = L.Add(graph.Label(r.Intn(g.NumLabels())))
	}
	return src, L
}

// csrReps is how many timed repetitions each (query, mode) pair gets; the
// per-query time is the minimum over repetitions, which discards GC
// pauses and scheduler preemptions.
const csrReps = 3

// csrMinTreeSize is the workload's search-tree floor, the bench-scale
// analogue of the paper's 10·log|V| lower threshold.
const csrMinTreeSize = 64

// runCSRPair times every query in both modes, paired: each query is
// warmed once per mode (pooled scratch, caches), then timed csrReps times
// per mode with the mode order alternating per query, and scored by its
// minimum repetition. Pairing removes drift (GC, thermal, cache state)
// that separate per-mode timing windows would read as speedup or
// slowdown; min-of-reps removes one-off pauses. Answers and Stats from
// the first run feed the cross-layout identity check.
func runCSRPair(qs []csrQuery, run func(*graph.Graph, csrQuery) (bool, lscr.Stats, error), gFilter, gLabeled *graph.Graph) (filterQPS, labeledQPS float64, identical bool, err error) {
	identical = true
	var fTotal, lTotal time.Duration
	for i, cq := range qs {
		fa, fst, err := run(gFilter, cq)
		if err != nil {
			return 0, 0, false, err
		}
		la, lst, err := run(gLabeled, cq)
		if err != nil {
			return 0, 0, false, err
		}
		if fa != la || fst != lst {
			identical = false
		}
		fBest, lBest := time.Duration(1)<<62, time.Duration(1)<<62
		for rep := 0; rep < csrReps; rep++ {
			order := []*graph.Graph{gFilter, gLabeled}
			if (i+rep)%2 == 1 {
				order[0], order[1] = order[1], order[0]
			}
			for _, gr := range order {
				start := time.Now()
				if _, _, err := run(gr, cq); err != nil {
					return 0, 0, false, err
				}
				d := time.Since(start)
				if gr == gFilter {
					if d < fBest {
						fBest = d
					}
				} else if d < lBest {
					lBest = d
				}
			}
		}
		fTotal += fBest
		lTotal += lBest
	}
	n := float64(len(qs))
	return n / fTotal.Seconds(), n / lTotal.Seconds(), identical, nil
}

// RunCSR prints the sweep (cmd/lscrbench -exp csr).
func RunCSR(w io.Writer, cfg Config) error {
	rep, err := MeasureCSR(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CSR labeled-scan vs filter on %s (|V|=%d |E|=%d |L|=%d), %d uncached queries per point\n",
		rep.Dataset, rep.Vertices, rep.Edges, rep.Labels, rep.Queries)
	tw := newTab(w)
	fmt.Fprintln(tw, "|L|\tUIS filter\tUIS labeled\tspeedup\tUIS* filter\tUIS* labeled\tspeedup\tINS filter\tINS labeled\tspeedup")
	for _, pt := range rep.Points {
		lbl := fmt.Sprintf("%d", pt.LabelCount)
		if pt.LabelCount == 0 {
			lbl = "all"
		}
		fmt.Fprintf(tw, "%s\t%.0f qps\t%.0f qps\t%.2fx\t%.0f qps\t%.0f qps\t%.2fx\t%.0f qps\t%.0f qps\t%.2fx\n",
			lbl, pt.UISFilterQPS, pt.UISLabeledQPS, pt.UISSpeedup,
			pt.UISStarFilterQPS, pt.UISStarLabeledQPS, pt.UISStarSpeedup,
			pt.INSFilterQPS, pt.INSLabeledQPS, pt.INSSpeedup)
	}
	tw.Flush()
	fmt.Fprintf(w, "selective (|L|<=2) worst-case speedup: %.2fx\n", rep.SelectiveSpeedup)
	fmt.Fprintf(w, "identical: %v\n", rep.Identical)
	if !rep.Identical {
		return fmt.Errorf("bench: labeled and filter scans diverged")
	}
	return nil
}

// RunCSRJSON writes the report as indented JSON — the format committed to
// BENCH_csr.json so later PRs can track the trajectory.
func RunCSRJSON(w io.Writer, cfg Config) error {
	rep, err := MeasureCSR(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Identical {
		return fmt.Errorf("bench: labeled and filter scans diverged")
	}
	return nil
}
