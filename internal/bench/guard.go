package bench

import (
	"fmt"
	"runtime"
)

// Guard rails for the experiments whose point is parallel speedup
// (-exp parallel, -exp scale). A sweep run at GOMAXPROCS=1 measures
// only goroutine-scheduling overhead and has repeatedly been mistaken
// for a real baseline, so those experiments refuse to run; a sweep
// oversubscribed past the physical CPU count (GOMAXPROCS raised by env
// on a smaller machine) is allowed but annotated, so the committed JSON
// says on its face that the speedup numbers are not hardware-limited.

// requireParallelEnv returns an error when the runtime cannot execute
// goroutines in parallel at all.
func requireParallelEnv(exp string) error {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		return fmt.Errorf(
			"bench: -exp %s needs GOMAXPROCS >= 2 to measure parallel speedup (have %d); rerun with GOMAXPROCS=4 or higher",
			exp, p)
	}
	return nil
}

// environmentWarning describes why this host's parallel numbers are
// suspect, or "" when they are trustworthy.
func environmentWarning() string {
	p, n := runtime.GOMAXPROCS(0), runtime.NumCPU()
	switch {
	case p < 2:
		return fmt.Sprintf("GOMAXPROCS=%d: cannot measure parallel speedup", p)
	case p > n:
		return fmt.Sprintf(
			"GOMAXPROCS=%d exceeds NumCPU=%d: workers are oversubscribed onto fewer cores, speedups reflect scheduling not hardware parallelism", p, n)
	default:
		return ""
	}
}
