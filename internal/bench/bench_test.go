package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The harness smoke tests use a tiny query budget; the real experiment
// entry points are cmd/lscrbench and the module-root benchmarks.
var tiny = Config{Scale: 1, QueriesPerGroup: 4, Seed: 1}

func TestDatasets(t *testing.T) {
	ds := Datasets(2)
	if len(ds) != 5 || ds[0].Universities != 2 || ds[4].Universities != 10 {
		t.Fatalf("Datasets = %+v", ds)
	}
}

func TestCompileConstraintErrors(t *testing.T) {
	g := buildDataset(DatasetSpec{Name: "t", Universities: 1}, 1)
	if _, _, err := compileConstraint(g, "S9"); err == nil {
		t.Error("unknown constraint accepted")
	}
	if _, vs, err := compileConstraint(g, "S5"); err != nil || len(vs) != 1 {
		t.Errorf("S5: err=%v |vs|=%d", err, len(vs))
	}
}

func TestRunGroupValidatesGroundTruth(t *testing.T) {
	g := buildDataset(DatasetSpec{Name: "t", Universities: 1}, 1)
	_, vs, err := compileConstraint(g, "S1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runGroup(g, nil, vs, nil, "UIS"); err != nil {
		t.Errorf("empty group: %v", err)
	}
	if _, err := runGroup(g, nil, vs, nil, "bogus"); err != nil {
		t.Errorf("empty group with bogus algo should not run: %v", err)
	}
}

func TestRunFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	cfg := tiny
	if err := RunFigure(&buf, "S1", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 10", "true queries", "false queries", "D1", "D5", "INS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := RunFigure(&buf, "S9", cfg); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	if err := RunTable2(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "D0", "D5", "Landmark[19]", "SCC[25]", "Table 3", "S5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	if err := RunFig5Density(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5(a)") {
		t.Error("missing header")
	}
	buf.Reset()
	if err := RunFig5Scale(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5(b)") {
		t.Error("missing header")
	}
}

func TestRunFig15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	if err := RunFig15(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 15", "magnitude", "10^1", "10^3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	if err := RunAblationRho(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "literal-D") {
		t.Error("rho ablation output incomplete")
	}
	buf.Reset()
	if err := RunAblationLandmarks(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RunAblationQueue(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UIS*") {
		t.Error("queue ablation output incomplete")
	}
	buf.Reset()
	if err := RunAblationVSOrder(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nearest to source") {
		t.Error("vsorder ablation output incomplete")
	}
}

func TestDigits(t *testing.T) {
	for m, want := range map[int]int{10: 1, 100: 2, 1000: 3, 99: 1, 9: 0} {
		if got := digits(m); got != want {
			t.Errorf("digits(%d) = %d, want %d", m, got, want)
		}
	}
}
