package bench

import (
	"fmt"
	"io"
	"time"

	"lscr/internal/lcr"
	"lscr/internal/testkg"
)

// RunFig5Density regenerates Figure 5(a): spanning-tree ("Sampling-Tree")
// LCR indexing time as the graph density D = |E|/|V| grows at fixed |V|.
// The paper reproduces the numbers of [6]; this runner rebuilds the index
// on random edge-labeled graphs and reports the measured trend (expected:
// roughly linear in density).
func RunFig5Density(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	n := 400 * cfg.Scale
	const labels = 6
	fmt.Fprintf(w, "Figure 5(a) — Sampling-Tree indexing time vs density (|V|=%d, |L|=%d)\n\n", n, labels)
	tw := newTab(w)
	fmt.Fprintf(tw, "D=|E|/|V|\tindexing time(ms)\tindex entries\n")
	r := rng(cfg.Seed, "fig5a")
	for d := 2.0; d <= 5.01; d += 0.5 {
		g := testkg.Random(r, n, int(float64(n)*d), labels)
		start := time.Now()
		idx := lcr.NewSpanningTreeIndex(g)
		el := time.Since(start)
		fmt.Fprintf(tw, "%.1f\t%.1f\t%d\n", d, float64(el)/float64(time.Millisecond), idx.Entries())
	}
	return tw.Flush()
}

// RunFig5Scale regenerates Figure 5(b): spanning-tree indexing time as
// |V| grows at fixed density D = 1.5 (expected: super-linear growth —
// the curve that makes the method unusable at KG scale).
func RunFig5Scale(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	const labels = 6
	fmt.Fprintf(w, "Figure 5(b) — Sampling-Tree indexing time vs |V| (D=1.5, |L|=%d)\n\n", labels)
	tw := newTab(w)
	fmt.Fprintf(tw, "|V|\tindexing time(ms)\tindex entries\n")
	r := rng(cfg.Seed, "fig5b")
	for _, n := range []int{200, 400, 600, 800, 1000} {
		n *= cfg.Scale
		g := testkg.Random(r, n, int(float64(n)*1.5), labels)
		start := time.Now()
		idx := lcr.NewSpanningTreeIndex(g)
		el := time.Since(start)
		fmt.Fprintf(tw, "%d\t%.1f\t%d\n", n, float64(el)/float64(time.Millisecond), idx.Entries())
	}
	return tw.Flush()
}
