package bench

import (
	"fmt"
	"io"
	"time"

	"lscr/internal/lscr"
	"lscr/internal/workload"
	"lscr/internal/yagogen"
)

// RunFig15 regenerates Figure 15: the YAGO experiment. Random
// substructure constraints are generated per order of magnitude m so that
// |V(S,G)| ∈ [0.8m, 1.2m] (§6.2), then true and false query groups run
// under UIS, UIS* and INS. Four panels: average running time and average
// passed-vertex number for true and false groups.
//
// The paper sweeps m = 10^1..10^5 on the 4M-vertex YAGO; at laptop scale
// the KG is smaller, so the sweep stops at the largest magnitude the KG
// supports (~|V|/10).
func RunFig15(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	entities := 20000 * cfg.Scale
	ycfg := yagogen.DefaultConfig(entities)
	ycfg.Seed = cfg.Seed
	g := yagogen.Generate(ycfg)
	idx := lscr.NewLocalIndex(g, lscr.IndexParams{Seed: cfg.Seed})
	r := rng(cfg.Seed, "fig15")

	magnitudes := []int{10, 100, 1000}
	if entities >= 100000 {
		magnitudes = append(magnitudes, 10000)
	}
	algos := []string{"UIS", "UIS*", "INS"}
	type row struct {
		m            int
		vs           int
		nTrue, nFals int
		res          map[string]map[bool]algoResult
	}
	var rows []row
	for _, m := range magnitudes {
		cons, vs, err := workload.RandomConstraintSized(r, g, m)
		if err != nil {
			return fmt.Errorf("bench: magnitude %d: %w", m, err)
		}
		trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
			Count: cfg.QueriesPerGroup,
			Seed:  cfg.Seed + int64(m),
		})
		if err != nil {
			return fmt.Errorf("bench: magnitude %d: %w", m, err)
		}
		rw := row{m: m, vs: len(vs), nTrue: len(trueQ), nFals: len(falseQ),
			res: map[string]map[bool]algoResult{}}
		if len(trueQ) == 0 || len(falseQ) == 0 {
			return fmt.Errorf("bench: magnitude %d produced empty group (true=%d false=%d)",
				m, len(trueQ), len(falseQ))
		}
		for _, algo := range algos {
			rw.res[algo] = map[bool]algoResult{}
			tr, err := runGroup(g, idx, vs, trueQ, algo)
			if err != nil {
				return err
			}
			fa, err := runGroup(g, idx, vs, falseQ, algo)
			if err != nil {
				return err
			}
			rw.res[algo][true] = tr
			rw.res[algo][false] = fa
		}
		rows = append(rows, rw)
	}

	fmt.Fprintf(w, "Figure 15 — YAGO-style KG (|V|=%d, |E|=%d), random constraints by |V(S,G)| magnitude\n",
		g.NumVertices(), g.NumEdges())
	panel := func(title string, f func(algoResult) string, trueGroup bool) {
		fmt.Fprintf(w, "\n%s\n", title)
		tw := newTab(w)
		fmt.Fprintf(tw, "magnitude\t|V(S,G)|\tUIS\tUIS*\tINS\n")
		for _, rw := range rows {
			fmt.Fprintf(tw, "10^%d\t%d", digits(rw.m), rw.vs)
			for _, algo := range algos {
				fmt.Fprintf(tw, "\t%s", f(rw.res[algo][trueGroup]))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	ms := func(a algoResult) string {
		return fmt.Sprintf("%.3f", float64(a.AvgTime)/float64(time.Millisecond))
	}
	pv := func(a algoResult) string { return fmt.Sprintf("%.0f", a.AvgPassed) }
	panel("(a) avg running time, true queries (ms)", ms, true)
	panel("(b) avg running time, false queries (ms)", ms, false)
	panel("(c) avg passed-vertex number, true queries", pv, true)
	panel("(d) avg passed-vertex number, false queries", pv, false)
	return nil
}

func digits(m int) int {
	d := 0
	for m >= 10 {
		m /= 10
		d++
	}
	return d
}
