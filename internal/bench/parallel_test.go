package bench

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// forceParallelEnv raises GOMAXPROCS so the guarded experiments run on
// single-core CI/dev hosts, restoring it when the test finishes.
func forceParallelEnv(t *testing.T) {
	t.Helper()
	if runtime.GOMAXPROCS(0) >= 2 {
		return
	}
	prev := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestMeasureParallelRefusesSerialHost(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if _, err := MeasureParallel(Config{Scale: 1, QueriesPerGroup: 1, Seed: 1}); err == nil {
		t.Fatal("MeasureParallel ran at GOMAXPROCS=1; want a refusal error")
	} else if !strings.Contains(err.Error(), "GOMAXPROCS") {
		t.Fatalf("refusal error should name GOMAXPROCS: %v", err)
	}
}

func TestMeasureParallel(t *testing.T) {
	forceParallelEnv(t)
	if testing.Short() {
		t.Skip("builds a real (small) index per worker level")
	}
	rep, err := MeasureParallel(Config{Scale: 1, QueriesPerGroup: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatal("parallel builds or fan-outs diverged from the sequential reference")
	}
	if len(rep.Index) < 2 || len(rep.Query) < 2 {
		t.Fatalf("sweep too small: %d index points, %d query points", len(rep.Index), len(rep.Query))
	}
	if rep.Index[0].Workers != 1 || rep.Query[0].Concurrency != 1 {
		t.Fatalf("sweep must start at the sequential baseline: %+v", rep)
	}
	has4 := false
	for _, p := range rep.Index {
		if p.Workers == 4 {
			has4 = true
		}
		if p.Seconds <= 0 || p.Speedup <= 0 {
			t.Fatalf("degenerate index point %+v", p)
		}
	}
	if !has4 {
		t.Fatal("sweep must include the 4-worker point")
	}
	for _, p := range rep.Query {
		if p.QPS <= 0 {
			t.Fatalf("degenerate query point %+v", p)
		}
	}
}

func TestRunParallelJSON(t *testing.T) {
	forceParallelEnv(t)
	if testing.Short() {
		t.Skip("builds a real (small) index per worker level")
	}
	var buf bytes.Buffer
	if err := RunParallelJSON(&buf, Config{Scale: 1, QueriesPerGroup: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var rep ParallelReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Dataset != "D1" || !rep.Identical {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real (small) index")
	}
	var buf bytes.Buffer
	if err := RunThroughput(&buf, Config{Scale: 1, QueriesPerGroup: 3, Seed: 1}, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "answers identical and correct") {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}

func TestRunParallelText(t *testing.T) {
	forceParallelEnv(t)
	if testing.Short() {
		t.Skip("builds a real (small) index per worker level")
	}
	var buf bytes.Buffer
	if err := RunParallel(&buf, Config{Scale: 1, QueriesPerGroup: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "index build") || !strings.Contains(out, "identical across worker counts: true") {
		t.Errorf("unexpected output:\n%s", out)
	}
}
