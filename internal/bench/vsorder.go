package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"lscr/internal/graph"
	"lscr/internal/lcr"
	"lscr/internal/lscr"
	"lscr/internal/workload"
)

// RunAblationVSOrder probes Theorem 4.1's claim that "the order of
// processing the elements in V(S,G) dominates the efficiency of UIS*":
// the same UIS* implementation runs the same workload under different
// V(S,G) orders — the engine's natural ascending order, a shuffled order
// (the paper's "disordered" assumption), highest-degree-first, and
// nearest-to-source-first (a poor man's informed ordering, approximating
// what INS's heap H achieves with the index).
func RunAblationVSOrder(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	spec := DatasetSpec{Name: "D2", Universities: 2 * cfg.Scale}
	g := buildDataset(spec, cfg.Seed)
	cons, vs, err := compileConstraint(g, "S1")
	if err != nil {
		return err
	}
	trueQ, falseQ, err := workload.Generate(g, cons, vs, workload.Config{
		Count: cfg.QueriesPerGroup, Seed: cfg.Seed + 33,
	})
	if err != nil {
		return err
	}
	r := rng(cfg.Seed, "vsorder")

	orders := []struct {
		name string
		make func(q workload.Query) []graph.VertexID
	}{
		{"ascending (engine output)", func(workload.Query) []graph.VertexID {
			return append([]graph.VertexID(nil), vs...)
		}},
		{"shuffled (paper assumption)", func(workload.Query) []graph.VertexID {
			out := append([]graph.VertexID(nil), vs...)
			r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		}},
		{"highest degree first", func(workload.Query) []graph.VertexID {
			out := append([]graph.VertexID(nil), vs...)
			sort.Slice(out, func(i, j int) bool {
				di, dj := g.Degree(out[i]), g.Degree(out[j])
				if di != dj {
					return di > dj
				}
				return out[i] < out[j]
			})
			return out
		}},
		{"nearest to source first", func(q workload.Query) []graph.VertexID {
			// Order by unconstrained BFS depth from the query source —
			// an informed ordering without any index.
			depth := make(map[graph.VertexID]int, g.NumVertices())
			order := lcr.ReachableSet(g, q.Source, g.LabelUniverse())
			for i, v := range order {
				depth[v] = i
			}
			out := append([]graph.VertexID(nil), vs...)
			sort.Slice(out, func(i, j int) bool {
				di, okI := depth[out[i]]
				dj, okJ := depth[out[j]]
				if okI != okJ {
					return okI
				}
				if di != dj {
					return di < dj
				}
				return out[i] < out[j]
			})
			return out
		}},
	}

	fmt.Fprintf(w, "Ablation — V(S,G) processing order for UIS* (dataset %s, |V|=%d, constraint S1)\n\n",
		spec.Name, g.NumVertices())
	tw := newTab(w)
	fmt.Fprintf(tw, "order\ttrue avg(ms)\tfalse avg(ms)\ttrue passed\tfalse passed\n")
	for _, ord := range orders {
		run := func(qs []workload.Query) (algoResult, error) {
			// Re-run with a per-query order (the nearest-to-source
			// ordering depends on the query).
			var total time.Duration
			var passed int
			for _, q := range qs {
				order := ord.make(q)
				start := time.Now()
				ans, st, err := uisStarWithOrder(g, q, order)
				total += time.Since(start)
				if err != nil {
					return algoResult{}, err
				}
				if ans != q.Expected {
					return algoResult{}, fmt.Errorf("vsorder %q: wrong answer", ord.name)
				}
				passed += st.PassedVertices
			}
			return algoResult{
				AvgTime:   total / time.Duration(len(qs)),
				AvgPassed: float64(passed) / float64(len(qs)),
			}, nil
		}
		tr, err := run(trueQ)
		if err != nil {
			return err
		}
		fa, err := run(falseQ)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.0f\t%.0f\n", ord.name,
			float64(tr.AvgTime)/float64(time.Millisecond),
			float64(fa.AvgTime)/float64(time.Millisecond),
			tr.AvgPassed, fa.AvgPassed)
	}
	return tw.Flush()
}

// uisStarWithOrder runs UIS* with an explicit V(S,G) order.
func uisStarWithOrder(g *graph.Graph, q workload.Query, order []graph.VertexID) (bool, lscr.Stats, error) {
	return lscr.UISStar(g, q.Query, order)
}
