// Package bench regenerates every table and figure of the paper's
// evaluation section (§6) at laptop scale. Each runner prints the same
// rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured
// shapes. The cmd/lscrbench CLI and the module-root testing.B benchmarks
// both delegate here.
//
// Scales: the paper evaluated KGs of 3.7M–18.9M vertices on a dedicated
// machine with 1000+1000 queries per point and an 8-hour indexing cap.
// The defaults here reproduce the shapes (orderings, crossovers, growth
// trends) at ~100×-smaller scale; every runner accepts a scale knob.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"text/tabwriter"
	"time"

	"lscr/internal/graph"
	"lscr/internal/lscr"
	"lscr/internal/lubm"
	"lscr/internal/pattern"
	"lscr/internal/sparql"
	"lscr/internal/workload"
)

// Config is shared by all runners.
type Config struct {
	// Scale multiplies dataset sizes. 1 is the laptop default (D1–D5 at
	// 1..5 universities ≈ 9k..45k vertices).
	Scale int
	// QueriesPerGroup is the paper's 1000, scaled down (default 15).
	QueriesPerGroup int
	Seed            int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.QueriesPerGroup <= 0 {
		c.QueriesPerGroup = 15
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// DatasetSpec names one synthetic dataset of Table 2.
type DatasetSpec struct {
	Name         string
	Universities int
}

// Datasets returns the D1–D5 series at the given scale.
func Datasets(scale int) []DatasetSpec {
	out := make([]DatasetSpec, 5)
	for i := range out {
		out[i] = DatasetSpec{Name: fmt.Sprintf("D%d", i+1), Universities: (i + 1) * scale}
	}
	return out
}

// Datasets and indexes are cached per (universities, seed) for the
// lifetime of the process: every figure sweeps the same D1–D5 series, and
// regenerating them per figure would quintuple harness time.
var (
	dsMu    sync.Mutex
	dsCache = map[[2]int64]*graph.Graph{}
	ixCache = map[[2]int64]*lscr.LocalIndex{}
)

// buildDataset generates (or reuses) the LUBM KG for spec.
func buildDataset(spec DatasetSpec, seed int64) *graph.Graph {
	key := [2]int64{int64(spec.Universities), seed}
	dsMu.Lock()
	defer dsMu.Unlock()
	if g, ok := dsCache[key]; ok {
		return g
	}
	cfg := lubm.DefaultConfig(spec.Universities)
	cfg.Seed = seed
	g := lubm.Generate(cfg)
	dsCache[key] = g
	return g
}

// buildIndex builds (or reuses) the local index for a cached dataset.
func buildIndex(g *graph.Graph, spec DatasetSpec, seed int64) *lscr.LocalIndex {
	key := [2]int64{int64(spec.Universities), seed}
	dsMu.Lock()
	defer dsMu.Unlock()
	if idx, ok := ixCache[key]; ok {
		return idx
	}
	idx := lscr.NewLocalIndex(g, lscr.IndexParams{Seed: seed})
	ixCache[key] = idx
	return idx
}

// compileConstraint resolves one of Table 3's S1–S5 against g and
// evaluates V(S,G).
func compileConstraint(g *graph.Graph, name string) (*pattern.Constraint, []graph.VertexID, error) {
	nc, ok := lubm.Constraint(name)
	if !ok {
		return nil, nil, fmt.Errorf("bench: unknown constraint %q", name)
	}
	q, err := sparql.Parse(nc.SPARQL)
	if err != nil {
		return nil, nil, err
	}
	cons, sat, err := q.Compile(g)
	if err != nil {
		return nil, nil, err
	}
	if !sat {
		return nil, nil, fmt.Errorf("bench: %s references unknown entities", name)
	}
	m, err := pattern.NewMatcher(g, cons)
	if err != nil {
		return nil, nil, err
	}
	return cons, m.MatchAll(), nil
}

// algoResult aggregates one algorithm over one query group.
type algoResult struct {
	AvgTime   time.Duration
	AvgPassed float64
}

// runGroup executes a query group under one algorithm.
func runGroup(g *graph.Graph, idx *lscr.LocalIndex, vs []graph.VertexID, qs []workload.Query, algo string) (algoResult, error) {
	if len(qs) == 0 {
		return algoResult{}, nil
	}
	var total time.Duration
	var passed int
	for _, q := range qs {
		var (
			ans bool
			st  lscr.Stats
			err error
		)
		start := time.Now()
		switch algo {
		case "Naive":
			ans, st, err = lscr.Naive(g, q.Query)
		case "UIS":
			ans, st, err = lscr.UIS(g, q.Query)
		case "UIS*":
			ans, st, err = lscr.UISStar(g, q.Query, vs)
		case "INS":
			ans, st, err = lscr.INS(g, idx, q.Query, vs)
		default:
			return algoResult{}, fmt.Errorf("bench: unknown algorithm %q", algo)
		}
		total += time.Since(start)
		if err != nil {
			return algoResult{}, err
		}
		if ans != q.Expected {
			return algoResult{}, fmt.Errorf("bench: %s answered %v, ground truth %v (s=%d t=%d)",
				algo, ans, q.Expected, q.Source, q.Target)
		}
		passed += st.PassedVertices
	}
	return algoResult{
		AvgTime:   total / time.Duration(len(qs)),
		AvgPassed: float64(passed) / float64(len(qs)),
	}, nil
}

// newTab returns a tabwriter for aligned experiment rows.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// rng builds a deterministic source for one experiment id.
func rng(seed int64, salt string) *rand.Rand {
	h := int64(1469598103934665603)
	for _, b := range []byte(salt) {
		h = (h ^ int64(b)) * 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h))
}
